"""Discrete-event simulation kernel.

A compact generator-coroutine DES engine in the style of SimPy,
providing everything the n-tier models need: an event loop with a
float-seconds clock, processes, timeouts, condition events, resources
with cancellable requests, item stores, overflow-dropping queues, and
sampling probes.
"""

from repro.sim.core import NORMAL, URGENT, Environment
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.monitor import MonitorHub, Sampler, TraceLog
from repro.sim.process import Process
from repro.sim.queues import DropQueue, Store
from repro.sim.resources import Container, PriorityResource, Request, Resource

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "PriorityResource",
    "Request",
    "Container",
    "Store",
    "DropQueue",
    "MonitorHub",
    "Sampler",
    "TraceLog",
    "NORMAL",
    "URGENT",
]
