"""Item queues for message passing between simulation components.

Two flavours are provided:

* :class:`Store` — unbounded (or blocking-bounded) FIFO of arbitrary
  items; ``put`` and ``get`` are events.
* :class:`DropQueue` — a finite queue with a **non-blocking** ``offer``
  that *drops* the item when the queue is full.  This models a TCP
  listen/accept queue: an arriving SYN either lands in the backlog or
  is silently discarded, it never blocks the sender.  Drop callbacks
  let the network layer schedule retransmissions.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import _PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class StorePut(Event):
    """Pending ``put`` on a :class:`Store`."""

    __slots__ = ("item",)


class StoreGet(Event):
    """Pending ``get`` on a :class:`Store`."""

    __slots__ = ("_store",)

    def cancel(self) -> None:
        """Withdraw this get if it has not been fulfilled yet."""
        if not self.triggered:
            # deque.remove is O(n) but get queues stay short in practice.
            try:
                # The owning store (or drop queue) is recorded on the
                # event at construction time.
                self._store._get_queue.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO of items with event-based ``put``/``get``.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum items held; ``put`` events wait (do not drop) while the
        store is full.  Defaults to unbounded.
    """

    __slots__ = ("env", "_capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, env: "Environment",
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: deque[Any] = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def __repr__(self) -> str:
        return "<Store items={} capacity={}>".format(
            len(self.items), self._capacity)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def capacity(self) -> float:
        return self._capacity

    # Settling is inlined into ``put``/``get``: between operations the
    # store is *settled* (no put is blocked while space exists, no get
    # waits while items exist), so a single arrival can unblock at most
    # one event on the other side — no fixed-point loop is needed, and
    # the trigger order (put before the get it feeds, get before the
    # put it makes room for) is byte-identical to the loop this
    # replaced, which the golden-trace tests pin.

    def put(self, item: Any, _new=StorePut.__new__,
            _cls=StorePut) -> StorePut:
        """Append ``item``; the event triggers once the item is stored."""
        event = _new(_cls)
        env = self.env
        event.env = env
        event.callbacks = []
        event._ok = True
        event._defused = False
        event.item = item
        items = self.items
        if self._put_queue or len(items) >= self._capacity:
            # Blocked behind earlier puts, or simply out of space.
            event._value = _PENDING
            self._put_queue.append(event)
            return event
        items.append(item)
        event._value = item
        env._trigger_now(event)
        if self._get_queue:
            # A settled store with waiting getters was empty, so the
            # item just stored is the one handed over.
            get = self._get_queue.popleft()
            get._value = items.popleft()
            env._trigger_now(get)
        return event

    def get(self, _new=StoreGet.__new__, _cls=StoreGet) -> StoreGet:
        """Take the oldest item; the event triggers with that item."""
        event = _new(_cls)
        env = self.env
        event.env = env
        event.callbacks = []
        event._ok = True
        event._defused = False
        event._store = self
        items = self.items
        if not items:
            event._value = _PENDING
            self._get_queue.append(event)
            return event
        event._value = items.popleft()
        env._trigger_now(event)
        put_queue = self._put_queue
        if put_queue and len(items) < self._capacity:
            # The take made room: admit the oldest blocked put.
            put = put_queue.popleft()
            put_item = put.item
            items.append(put_item)
            put._value = put_item
            env._trigger_now(put)
        return event


class DropQueue:
    """Finite FIFO that drops on overflow instead of blocking.

    The occupancy counted against ``capacity`` is ``len(items)`` plus
    any *reserved* slots (see :meth:`reserve`), mirroring how a kernel
    accept queue counts not-yet-accepted connections.
    """

    __slots__ = ("env", "_capacity", "items", "_get_queue", "_on_drop",
                 "offered", "accepted", "dropped", "peak_length")

    def __init__(self, env: "Environment", capacity: int,
                 on_drop: Optional[Callable[[Any], None]] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self._capacity = int(capacity)
        self.items: deque[Any] = deque()
        self._get_queue: deque[StoreGet] = deque()
        self._on_drop = on_drop
        #: Counters for observability.
        self.offered = 0
        self.accepted = 0
        self.dropped = 0
        #: High-water mark of the queue length.
        self.peak_length = 0

    def __repr__(self) -> str:
        return "<DropQueue {}/{} dropped={}>".format(
            len(self.items), self._capacity, self.dropped)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self._capacity

    def offer(self, item: Any) -> bool:
        """Try to enqueue ``item`` without blocking.

        Returns ``True`` if accepted.  On overflow the item is dropped,
        the drop callback (if any) runs, and ``False`` is returned.
        """
        self.offered += 1
        if self._get_queue:
            # A consumer is already waiting: hand the item over directly.
            self.accepted += 1
            get = self._get_queue.popleft()
            get._value = item
            self.env._trigger_now(get)
            return True
        if len(self.items) >= self._capacity:
            self.dropped += 1
            if self._on_drop is not None:
                self._on_drop(item)
            return False
        self.accepted += 1
        self.items.append(item)
        if len(self.items) > self.peak_length:
            self.peak_length = len(self.items)
        return True

    def get(self) -> StoreGet:
        """Take the oldest item; the event triggers with that item."""
        event = StoreGet.__new__(StoreGet)
        event.env = self.env
        event.callbacks = []
        event._value = _PENDING
        event._ok = True
        event._defused = False
        event._store = self
        if self.items:
            event._value = self.items.popleft()
            self.env._trigger_now(event)
        else:
            self._get_queue.append(event)
        return event
