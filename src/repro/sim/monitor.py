"""Sampling probes for simulation state.

The paper's methodology rests on *fine-grained* monitoring: queue
lengths, CPU utilisation and dirty-page sizes sampled at 50 ms windows.
:class:`Sampler` runs a probe function on a fixed period and records
``(time, value)`` pairs; :class:`TraceLog` records discrete events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Sampler:
    """Periodically evaluate ``probe()`` and record the results.

    Parameters
    ----------
    env:
        Owning environment.
    probe:
        Zero-argument callable returning the value to record.
    period:
        Sampling period in seconds (default 50 ms, the paper's window).
    name:
        Label used in reports.
    """

    def __init__(self, env: "Environment", probe: Callable[[], Any],
                 period: float = 0.050, name: str = "") -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.probe = probe
        self.period = period
        self.name = name
        self.times: list[float] = []
        self.values: list[Any] = []
        self._process = env.process(self._run())

    def _run(self):
        from repro.sim.events import Interrupt

        try:
            while True:
                self.times.append(self.env.now)
                self.values.append(self.probe())
                yield self.env.timeout(self.period)
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling (safe to call once)."""
        if self._process.is_alive:
            self._process.interrupt("sampler stopped")

    def series(self) -> tuple[list[float], list[Any]]:
        """Return ``(times, values)`` recorded so far."""
        return self.times, self.values

    def __len__(self) -> int:
        return len(self.times)


class TraceLog:
    """Append-only log of ``(time, payload)`` records."""

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.records: list[tuple[float, Any]] = []

    def log(self, payload: Any) -> None:
        """Record ``payload`` at the current simulated time."""
        self.records.append((self.env.now, payload))

    def between(self, start: float, end: float) -> list[tuple[float, Any]]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r[0] < end]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
