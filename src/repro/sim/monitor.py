"""Sampling probes for simulation state.

The paper's methodology rests on *fine-grained* monitoring: queue
lengths, CPU utilisation and dirty-page sizes sampled at 50 ms windows.
:class:`Sampler` runs a probe function on a fixed period and records
``(time, value)`` pairs; :class:`TraceLog` records discrete events.

Both are cheap when disabled: a :class:`Sampler` created with
``enabled=False`` never starts its sampling process (no timeout events
enter the kernel heap at all), and a disabled :class:`TraceLog` reduces
:meth:`TraceLog.log` to a single flag check so call sites do not need
``is not None`` guards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Sampler:
    """Periodically evaluate ``probe()`` and record the results.

    Parameters
    ----------
    env:
        Owning environment.
    probe:
        Zero-argument callable returning the value to record.
    period:
        Sampling period in seconds (default 50 ms, the paper's window).
    name:
        Label used in reports.
    enabled:
        When ``False`` the sampler records nothing and — crucially for
        kernel throughput — schedules nothing: the sampling process is
        never started.
    """

    __slots__ = ("env", "probe", "period", "name", "enabled", "times",
                 "values", "_process")

    def __init__(self, env: "Environment", probe: Callable[[], Any],
                 period: float = 0.050, name: str = "",
                 enabled: bool = True) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.probe = probe
        self.period = period
        self.name = name
        self.enabled = enabled
        self.times: list[float] = []
        self.values: list[Any] = []
        self._process = env.process(self._run()) if enabled else None

    def _run(self):
        from repro.sim.events import Interrupt

        try:
            while True:
                self.times.append(self.env.now)
                self.values.append(self.probe())
                yield self.env.timeout(self.period)
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling (safe to call once)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("sampler stopped")

    def series(self) -> tuple[list[float], list[Any]]:
        """Return ``(times, values)`` recorded so far."""
        return self.times, self.values

    def __len__(self) -> int:
        return len(self.times)


class TraceLog:
    """Append-only log of ``(time, payload)`` records."""

    __slots__ = ("env", "name", "enabled", "records")

    def __init__(self, env: "Environment", name: str = "",
                 enabled: bool = True) -> None:
        self.env = env
        self.name = name
        self.enabled = enabled
        self.records: list[tuple[float, Any]] = []

    def log(self, payload: Any) -> None:
        """Record ``payload`` at the current simulated time."""
        if self.enabled:
            self.records.append((self.env.now, payload))

    def between(self, start: float, end: float) -> list[tuple[float, Any]]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r[0] < end]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
