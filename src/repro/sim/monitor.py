"""Sampling probes for simulation state.

The paper's methodology rests on *fine-grained* monitoring: queue
lengths, CPU utilisation and dirty-page sizes sampled at 50 ms windows.
:class:`Sampler` runs a probe function on a fixed period and records
``(time, value)`` pairs; :class:`TraceLog` records discrete events.

Both are cheap when disabled: a :class:`Sampler` created with
``enabled=False`` never starts its sampling process (no timeout events
enter the kernel heap at all), and a disabled :class:`TraceLog` reduces
:meth:`TraceLog.log` to a single flag check so call sites do not need
``is not None`` guards.

Batched sampling
----------------
Each enabled :class:`Sampler` costs one generator process plus one
timeout event per tick.  At paper scale (a handful of servers) that is
noise; at the large-N axis (500+ replicas, each with a queue-length
probe) the samplers alone inject tens of thousands of events per
simulated second.  A :class:`MonitorHub` amortises this: *one*
recurring kernel event drains every attached probe in a plain loop, so
the per-tick kernel cost is constant in the number of probes.  Hubs
are **opt-in** (pass ``hub=`` to :class:`Sampler`): the default
per-sampler scheduling is part of the pinned golden event trace, and a
hub orders its probes by attach order within one event rather than by
per-sampler event sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class MonitorHub:
    """Drain a batch of probes from one recurring kernel event.

    All attached samplers share the hub's period and tick phase; each
    tick appends to every sampler's ``times``/``values`` in attach
    order.  The sampling process starts lazily on the first attach, so
    an unused hub schedules nothing.
    """

    __slots__ = ("env", "period", "name", "samplers", "_process")

    def __init__(self, env: "Environment", period: float = 0.050,
                 name: str = "") -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.period = period
        self.name = name
        #: Attached samplers, in attach order.
        self.samplers: list["Sampler"] = []
        self._process = None

    def attach(self, sampler: "Sampler") -> None:
        """Register ``sampler``; it joins at the next hub tick."""
        self.samplers.append(sampler)
        if self._process is None:
            self._process = self.env.process(self._run())

    def _run(self):
        from repro.sim.events import Interrupt

        env = self.env
        timeout = env.timeout
        period = self.period
        samplers = self.samplers
        try:
            while True:
                now = env._now
                # ``samplers`` is read live so late attaches join the
                # next tick without restarting the process.
                for sampler in samplers:
                    sampler.times.append(now)
                    sampler.values.append(sampler.probe())
                yield timeout(period)
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop the hub tick (and with it every attached sampler)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("hub stopped")

    def __len__(self) -> int:
        return len(self.samplers)


class Sampler:
    """Periodically evaluate ``probe()`` and record the results.

    Parameters
    ----------
    env:
        Owning environment.
    probe:
        Zero-argument callable returning the value to record.
    period:
        Sampling period in seconds (default 50 ms, the paper's window).
    name:
        Label used in reports.
    enabled:
        When ``False`` the sampler records nothing and — crucially for
        kernel throughput — schedules nothing: the sampling process is
        never started.
    hub:
        When given (and ``enabled``), the sampler owns no process at
        all: it is attached to the :class:`MonitorHub`, which drains
        its probe on the hub's shared tick.  ``period`` is ignored in
        favour of the hub's.
    """

    __slots__ = ("env", "probe", "period", "name", "enabled", "times",
                 "values", "_process")

    def __init__(self, env: "Environment", probe: Callable[[], Any],
                 period: float = 0.050, name: str = "",
                 enabled: bool = True,
                 hub: Optional[MonitorHub] = None) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.probe = probe
        self.period = period if hub is None else hub.period
        self.name = name
        self.enabled = enabled
        self.times: list[float] = []
        self.values: list[Any] = []
        if not enabled:
            self._process = None
        elif hub is not None:
            self._process = None
            hub.attach(self)
        else:
            self._process = env.process(self._run())

    def _run(self):
        from repro.sim.events import Interrupt

        try:
            while True:
                self.times.append(self.env.now)
                self.values.append(self.probe())
                yield self.env.timeout(self.period)
        except Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling (safe to call once)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("sampler stopped")

    def series(self) -> tuple[list[float], list[Any]]:
        """Return ``(times, values)`` recorded so far."""
        return self.times, self.values

    def __len__(self) -> int:
        return len(self.times)


class TraceLog:
    """Append-only log of ``(time, payload)`` records."""

    __slots__ = ("env", "name", "enabled", "records")

    def __init__(self, env: "Environment", name: str = "",
                 enabled: bool = True) -> None:
        self.env = env
        self.name = name
        self.enabled = enabled
        self.records: list[tuple[float, Any]] = []

    def log(self, payload: Any) -> None:
        """Record ``payload`` at the current simulated time."""
        if self.enabled:
            self.records.append((self.env.now, payload))

    def between(self, start: float, end: float) -> list[tuple[float, Any]]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r[0] < end]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
