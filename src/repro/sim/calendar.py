"""Calendar-queue event scheduler: O(1) insert/pop for clustered times.

A DES produces event times that cluster tightly around ``now`` — think
times, sub-millisecond service times, link latencies — with a thin far
tail (run-until deadlines, recovery windows).  A binary heap pays
``O(log n)`` sift costs on every operation; a *calendar queue* (Brown,
CACM 1988) exploits the clustering: near-future events go into an
array of fixed-width time buckets (append, O(1)), far-future events
into a small sorted overflow heap, and the consumer walks the wheel
slot by slot, sorting each small bucket once as it becomes current.

Ordering contract
-----------------
Entries are the kernel's packed ``(time, key, event)`` tuples, where
``key = (priority << _KEY_SHIFT) | sequence`` — exactly the binary
heap's ordering key.  The queue pops entries in globally sorted
``(time, key)`` order, so FIFO tie-breaking (and therefore the
golden-trace hashes) is byte-identical to the heap scheduler it
replaces:

* the slot mapping ``int((t - base) * inv_width)`` is monotone in
  ``t``, so an entry can never land in an earlier slot than a
  strictly-earlier entry;
* within a slot, entries are sorted by full ``(time, key)`` tuple
  comparison when the slot becomes current;
* entries scheduled *into the current slot* while it drains (the
  zero-delay ``succeed``/``_trigger_now`` case) are placed by binary
  insertion into the undrained suffix — they carry a fresh, larger
  sequence number than any already-popped entry at the same time, and
  tuple comparison orders them correctly against everything pending.

Resizing
--------
The wheel doubles when occupancy exceeds :data:`GROW_FACTOR` entries
per bucket, re-estimating the bucket width from the median inter-event
gap of the pending set; it halves at epoch rollover when occupancy has
fallen below :data:`SHRINK_FACTOR`.  Both triggers are pure functions
of the pending entries, so resize points — and the resulting pop
order, which resizing never changes — are deterministic.

The hot paths (``push``, and the pop fast path that
``Environment.run`` inlines) are written against this class's slots
directly; keep the attribute layout stable.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Optional

__all__ = ["CalendarQueue"]

_INF = float("inf")

#: Initial wheel geometry: 256 buckets of 1 ms cover a 0.256 s span,
#: which holds the sub-millisecond service/link times the
#: millibottleneck models produce; think-time events (~1 s) start in
#: the overflow heap and migrate into the wheel as epochs advance (or
#: the wheel resizes toward their spacing).
DEFAULT_BUCKETS = 256
DEFAULT_WIDTH = 0.001
#: Grow when pending entries exceed this many per bucket.
GROW_FACTOR = 2
#: Shrink (checked at epoch rollover) below this many per bucket.
SHRINK_FACTOR = 0.25
MIN_BUCKETS = 64
MAX_BUCKETS = 1 << 17
#: Bucket width never drops below 1 ns: narrower buckets cannot
#: separate distinct float timestamps at simulation scale and only
#: inflate empty-slot scans.
MIN_WIDTH = 1e-9


class CalendarQueue:
    """Priority queue of ``(time, key, payload)`` tuples on a timer wheel."""

    __slots__ = ("_buckets", "_nbuckets", "_width", "_inv_width", "_base",
                 "_span", "_horizon", "_cur_slot", "_ready", "_ready_idx",
                 "_overflow", "_count", "_grow_at")

    def __init__(self, start_time: float = 0.0,
                 nbuckets: int = DEFAULT_BUCKETS,
                 width: float = DEFAULT_WIDTH) -> None:
        self._overflow: list[tuple] = []
        self._count = 0
        self._init_wheel(nbuckets, width, start_time)

    def _init_wheel(self, nbuckets: int, width: float, base: float) -> None:
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        self._inv_width = 1.0 / width
        self._base = base
        self._span = nbuckets * width
        self._horizon = base + self._span
        self._cur_slot = 0
        #: The current slot's bucket, kept sorted; ``_ready_idx`` marks
        #: the consumed prefix.  Popped cells are overwritten with
        #: ``None`` so the object pool's refcount guard never sees a
        #: stale reference through a lingering entry tuple.
        self._ready = self._buckets[0]
        self._ready_idx = 0
        self._grow_at = (GROW_FACTOR * nbuckets if nbuckets < MAX_BUCKETS
                         else _INF)

    # -- sizing ------------------------------------------------------------
    #: ``_count`` is maintained lazily: pushes increment it, but pops
    #: from the current slot only advance ``_ready_idx`` — the pending
    #: size is ``_count - _ready_idx``, reconciled whenever ``_advance``
    #: or ``_resize`` rebuilds state.  This keeps the dispatch loop's
    #: inlined pop down to an index bump and a cell store.
    def __len__(self) -> int:
        return self._count - self._ready_idx

    def __bool__(self) -> bool:
        return self._count > self._ready_idx

    # -- insert ------------------------------------------------------------
    def push(self, entry: tuple) -> None:
        """Insert ``entry == (time, key, payload)``; amortised O(1)."""
        t = entry[0]
        self._count += 1
        if t >= self._horizon:
            heappush(self._overflow, entry)
            return
        idx = int((t - self._base) * self._inv_width)
        if idx >= self._nbuckets:  # float-rounding guard at the edge
            idx = self._nbuckets - 1
        if idx > self._cur_slot:
            # Future slot of the current epoch: plain append, sorted
            # lazily when the slot becomes current.
            self._buckets[idx].append(entry)
        else:
            # Current slot (zero-delay triggers land here): binary
            # insertion into the undrained suffix keeps pop order
            # exact.  ``idx < cur`` only happens through float
            # rounding right after a resize; the suffix insertion is
            # still correct because ``t`` is never behind the clock.
            # Fresh sequence numbers are monotone, so the entry
            # usually belongs after the whole suffix — one comparison
            # against the tail replaces the bisection then (``insort``
            # right-biases ties, so the positions agree).
            ready = self._ready
            if len(ready) == self._ready_idx or entry >= ready[-1]:
                ready.append(entry)
            else:
                insort(ready, entry, self._ready_idx)
        if self._count > self._grow_at:
            self._resize(self._nbuckets * 2)

    def push_overflow(self, entry: tuple) -> None:
        """Internal: overflow insert for callers that inlined the wheel
        branch of :meth:`push` and already counted the entry."""
        heappush(self._overflow, entry)

    # -- remove ------------------------------------------------------------
    def pop(self) -> Optional[tuple]:
        """Remove and return the least entry, or ``None`` when empty.

        ``Environment.run`` inlines the first branch of this method;
        ``_advance`` is the shared slow path.
        """
        idx = self._ready_idx
        ready = self._ready
        if idx < len(ready):
            entry = ready[idx]
            ready[idx] = None
            self._ready_idx = idx + 1
            return entry
        return self._advance()

    def _advance(self) -> Optional[tuple]:
        """Slow path: the current slot is drained — find the next entry.

        Walks the remaining slots of this epoch; at rollover, refills
        the wheel from the overflow heap (jumping straight to the
        overflow minimum's epoch when the gap is large) and considers
        a shrink.  Returns ``None`` only when the queue is empty.
        """
        self._count -= self._ready_idx
        self._ready_idx = 0
        del self._ready[:]
        if self._count == 0:
            return None
        slot = self._cur_slot
        buckets = self._buckets
        nbuckets = self._nbuckets
        while True:
            slot += 1
            if slot >= nbuckets:
                self._rollover()
                buckets = self._buckets
                nbuckets = self._nbuckets
                slot = 0
            bucket = buckets[slot]
            if bucket:
                if len(bucket) > 1:
                    bucket.sort()
                self._cur_slot = slot
                self._ready = bucket
                self._ready_idx = 1
                entry = bucket[0]
                bucket[0] = None
                return entry

    def _rollover(self) -> None:
        """Advance the wheel to the epoch holding the next pending entry.

        Reached only with every bucket empty (the epoch scan just
        exhausted them), so all pending entries sit in the overflow
        heap and can be redistributed against the new ``base``.
        """
        overflow = self._overflow
        t_min = overflow[0][0]
        span = self._span
        base = self._base + span
        if t_min >= base + span:
            # Jump whole epochs instead of scanning empty wheels.
            base += int((t_min - base) / span) * span
            while t_min < base:  # float-rounding guards, <= 2 iterations
                base -= span
            while t_min >= base + span:
                base += span
        nbuckets = self._nbuckets
        if (self._count < nbuckets * SHRINK_FACTOR
                and nbuckets > MIN_BUCKETS):
            self._init_wheel(nbuckets // 2, self._width * 2, base)
        else:
            self._base = base
            self._horizon = base + span
            self._cur_slot = 0
            self._ready = self._buckets[0]
            self._ready_idx = 0
        buckets = self._buckets
        horizon = self._horizon
        inv_width = self._inv_width
        new_base = self._base
        last = self._nbuckets - 1
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            idx = int((entry[0] - new_base) * inv_width)
            buckets[idx if idx < last else last].append(entry)

    # -- resize ------------------------------------------------------------
    def _resize(self, nbuckets: int) -> None:
        """Rebuild the wheel with ``nbuckets`` buckets and a width
        re-estimated from the pending set's median inter-event gap, so
        clustered schedules get narrow buckets and sparse ones wide."""
        if nbuckets > MAX_BUCKETS:
            nbuckets = MAX_BUCKETS
        if nbuckets == self._nbuckets:
            self._grow_at = _INF
            return
        entries = self._drain_entries()
        width = _estimate_width(entries, self._width)
        base = entries[0][0] if entries else self._base
        self._init_wheel(nbuckets, width, base)
        self._count = len(entries)
        horizon = self._horizon
        buckets = self._buckets
        inv_width = self._inv_width
        last = nbuckets - 1
        overflow = self._overflow = []
        split = _bisect_time(entries, horizon)
        for entry in entries[:split]:
            idx = int((entry[0] - base) * inv_width)
            buckets[idx if idx < last else last].append(entry)
        # ``entries`` is sorted, so the tail is already a valid heap.
        overflow.extend(entries[split:])
        # The first slot is current: sort it so pops resume exactly.
        self._ready = self._buckets[0]
        self._ready.sort()
        # Back off when the rebuild could not spread the pending set
        # (e.g. a large same-timestamp cluster): without this, every
        # subsequent grow check would re-trigger an O(n) rebuild.  The
        # doubled trigger keeps total resize work amortised O(n).
        if self._count > self._grow_at:
            self._grow_at = self._count * GROW_FACTOR

    def _drain_entries(self) -> list[tuple]:
        """All pending entries in sorted order (consumed prefix dropped)."""
        entries = [e for e in self._ready[self._ready_idx:]
                   if e is not None]
        for slot in range(self._cur_slot + 1, self._nbuckets):
            entries.extend(self._buckets[slot])
        entries.sort()
        entries.extend(sorted(self._overflow))
        return entries

    # -- inspection --------------------------------------------------------
    def peek_time(self) -> float:
        """Time of the least entry, or ``inf`` when empty (no mutation)."""
        if self._count == self._ready_idx:
            return _INF
        if self._ready_idx < len(self._ready):
            return self._ready[self._ready_idx][0]
        for slot in range(self._cur_slot + 1, self._nbuckets):
            bucket = self._buckets[slot]
            if bucket:
                return min(bucket)[0]
        return self._overflow[0][0]

    # -- introspection (tests, repr) ---------------------------------------
    @property
    def nbuckets(self) -> int:
        return self._nbuckets

    @property
    def width(self) -> float:
        return self._width

    def __repr__(self) -> str:
        return ("<CalendarQueue n={} buckets={} width={:g} base={:g} "
                "overflow={}>".format(self._count, self._nbuckets,
                                      self._width, self._base,
                                      len(self._overflow)))


def _bisect_time(entries: list[tuple], t: float) -> int:
    """First index whose entry time is ``>= t`` (``entries`` sorted)."""
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < t:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _estimate_width(entries: list[tuple], fallback: float) -> float:
    """Median inter-event gap of (a sample of) ``entries``, floored.

    Brown's classic estimator samples the queue around its median;
    pending entries are already sorted here, so take an evenly spaced
    sample and use the median positive gap — robust against both the
    dense zero-delay cluster at ``now`` and far-future outliers.
    """
    n = len(entries)
    if n < 2:
        return max(fallback, MIN_WIDTH)
    step = max(1, n // 64)
    sample = [entries[i][0] for i in range(0, n, step)]
    gaps = sorted(b - a for a, b in zip(sample, sample[1:]) if b > a)
    if not gaps:
        return max(fallback, MIN_WIDTH)
    median = gaps[len(gaps) // 2]
    return max(median * 2.0, MIN_WIDTH)
