"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine design (as popularised
by SimPy): simulation *processes* are Python generators that ``yield``
:class:`Event` instances and are resumed when those events trigger.

An event moves through three stages:

1. *pending* — created, not yet triggered;
2. *triggered* — a value (or exception) has been attached and the event
   has been placed on the environment's schedule;
3. *processed* — the scheduler has popped the event and run its callbacks.

Only the transition from pending to triggered is under user control
(via :meth:`Event.succeed` / :meth:`Event.fail`).

All event classes use ``__slots__``: events are allocated on every
request/timeout/resource interaction, so avoiding the per-instance
``__dict__`` is one of the main levers behind the kernel's throughput
(see ``benchmarks/test_kernel_throughput.py``).

Free-list pooling
-----------------
:class:`Timeout` and plain :class:`Event` instances are additionally
*recycled*: the dispatch loop in :meth:`Environment.run` returns a
processed event to a per-environment free list when ``sys.getrefcount``
proves the loop holds the sole remaining reference (capped at
:data:`POOL_MAX` per class), and :meth:`Environment.timeout` /
:meth:`Environment.event` draw from those lists before allocating.
Recycled instances are reset to pristine pending state (callbacks list
emptied and reattached, value/ok/defused cleared) *at recycle time*, so
the factories' pool hit path is a ``list.pop`` plus two stores.  Exact
``type() is`` checks keep subclasses (``Initialize``, ``Condition``,
``Process``...) out of the pools.  Events dispatched via
:meth:`Environment.step` are never recycled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

# Scheduling priorities: lower value runs earlier at equal timestamps.
URGENT = 0
NORMAL = 1

#: Cap on each per-environment free list.  Pools only grow while events
#: die faster than they are created, so a few thousand covers the churn
#: of any steady-state workload without pinning memory after a burst.
POOL_MAX = 4096

_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set when a failure value was retrieved or given to a process;
        #: unhandled failures are re-raised by the environment.
        self._defused: bool = False

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<{} {}>".format(type(self).__name__, state)

    @property
    def triggered(self) -> bool:
        """``True`` once a value has been attached to the event."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (valid only once triggered)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event triggered with."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = True
        self._value = value
        # Zero-delay NORMAL scheduling is the dominant case; the
        # environment's trigger fast path produces the identical
        # schedule key without the delay-validation call chain.
        if priority == NORMAL:
            self.env._trigger_now(self)
        else:
            self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside any process waiting on the
        event; if nobody waits, the environment raises it at the end of
        the step unless :meth:`defuse` was called.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = False
        self._value = exception
        if priority == NORMAL:
            self.env._trigger_now(self)
        else:
            self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = event._ok
        self._value = event._value
        self.env._trigger_now(self)

    # -- combinators -----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed delay in simulated time.

    This is the dominant event type of every workload, so
    :meth:`Environment.timeout` constructs it through a fast path that
    bypasses the ``__init__`` chain; the constructor below is kept for
    direct instantiation and behaves identically.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if not 0.0 <= delay < float("inf"):
            raise ValueError("invalid delay: {!r}".format(delay))
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._delay = delay
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return "<Timeout delay={}>".format(self._delay)


class Initialize(Event):
    """Internal event used to start a new :class:`~repro.sim.process.Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Ordered mapping of the events a condition has collected so far."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return "<ConditionValue {}>".format(self.todict())

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> list[Event]:
        return list(self.events)

    def values(self) -> list[Any]:
        return [event._value for event in self.events]

    def todict(self) -> dict[Event, Any]:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Event that triggers when a predicate over child events holds.

    Used through the ``&`` / ``|`` operators on events or through
    :meth:`Environment.all_of` / :meth:`Environment.any_of`.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list["Event"], int], bool],
        events: Iterable["Event"],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")

        # Immediately check already-processed events.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and self._value is _PENDING:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition) and event.triggered and event._ok:
                for child in event._value.events:
                    if child not in value.events:
                        value.events.append(child)
            elif event.callbacks is None and event not in value.events:
                value.events.append(event)

    def _check(self, event: "Event") -> None:
        if self._value is not _PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: list["Event"], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list["Event"], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that waits for every child event."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that waits for the first child event."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]) -> None:
        super().__init__(env, Condition.any_events, events)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:
        return "Interrupt({!r})".format(self.cause)
