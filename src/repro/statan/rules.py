"""The statan ruleset: simulation-specific checks.

Rule families (the id is what ``--select`` / ``--ignore`` and
``# statan: ignore[...]`` take; individual finding codes also work):

============== ======= ========================================================
family         codes   what it catches
============== ======= ========================================================
determinism    DET00x  wall-clock reads, global ``random`` / ``np.random``
                       state, ``os.urandom``, unseeded ``default_rng()``
process-       PROC00x generator-protocol abuse in sim processes: bare
protocol               ``yield``, yields of obvious non-Events, ``return
                       <value>`` mixed with yields
resource-leak  RES00x  ``acquire()`` without a matching ``release()`` on all
                       paths of the same function
float-time-eq  FLT001  ``==`` / ``!=`` between simulation timestamps
missing-slots  SLOT001 hot-path classes under ``sim/`` without ``__slots__``
bad-delay      NAN00x  NaN/inf/negative delay literals reaching
                       ``schedule()`` / ``timeout()``
retry-bound    RETRY001 ``while True`` retry loops (pause + ``continue``)
                       with no attempt cap, deadline, break, or raise
seed-threading SEED001 system/fault builders called without threading the
                       experiment's injected RNG (silent fallback to
                       ``DEFAULT_BUILD_SEED``)
perf-hot-path  PERF00x direct ``heapq`` use outside the calendar-queue
                       module, and per-event ``Event``/``Timeout``/``Span``
                       construction inside loops in ``sim``/``tracing``
                       hot paths that bypass the free-list/factory APIs
queue-bound    QUEUE001 unbounded ``Store``/``deque``/``Queue``
                       construction in ``tiers/``/``controlplane/``
                       request-path code (no capacity/maxlen/maxsize)
shard-ring     SHARD001 consistent-hash ring construction from salted
                       ``hash()``, RNG draws, or unordered set
                       iteration (ring must be a pure function of
                       membership)
============== ======= ========================================================

Every check here exists because its bug class silently corrupts a
deterministic experiment: an un-injected random source makes the golden
traces diverge across hosts, a leaked pool slot shows up twenty
simulated minutes later as phantom pool exhaustion, and a ``__dict__``
on an event class undoes PR 1's kernel optimisations.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.statan.engine import Context, Rule, Severity

__all__ = [
    "DeterminismRule", "ProcessProtocolRule", "ResourceSafetyRule",
    "FloatTimeComparisonRule", "MissingSlotsRule", "BadDelayRule",
    "UnboundedRetryRule", "SeedThreadingRule", "PerfHotPathRule",
    "QueueBoundRule", "ShardRingRule", "default_rules", "RULES",
]


# -- shared helpers -------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's body, not descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTIONS + (ast.Lambda,)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _FunctionRuleVisitor(ast.NodeVisitor):
    """Visitor base that dispatches once per function definition."""

    def __init__(self, ctx: Context) -> None:
        self.ctx = ctx

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def check_function(self, node) -> None:  # pragma: no cover
        raise NotImplementedError


# -- determinism ----------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
}
_WALL_CLOCK_NAMES = {name.split(".", 1)[1] for name in _WALL_CLOCK}
_DATETIME = {
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
}
#: ``np.random`` attributes that are fine to call: constructing an
#: explicitly-seeded generator is the sanctioned idiom.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence"}


class DeterminismRule(Rule):
    """All randomness and time must be injected, never ambient.

    Identical seeds must give identical event traces (DESIGN.md §7); a
    single wall-clock read or hidden global-RNG draw breaks that silently
    and only shows up as a diverged golden trace with no locality.
    """

    id = "determinism"
    description = "ambient time/randomness instead of injected sources"
    codes = ("DET001", "DET002", "DET003", "DET004", "DET005", "DET006")

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                name = _dotted(node.func)
                if name is not None:
                    rule._check_call(ctx, node, name)
                self.generic_visit(node)

            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                rule._check_import(ctx, node)

        return Visitor()

    def _check_call(self, ctx: Context, node: ast.Call, name: str) -> None:
        if name in _WALL_CLOCK:
            ctx.report(node, "DET001", self.id, Severity.ERROR,
                       "wall-clock read '{}()' in simulation code; "
                       "use the simulated clock (env.now)".format(name))
        elif name in _DATETIME:
            ctx.report(node, "DET002", self.id, Severity.ERROR,
                       "'{}()' reads the host clock; simulation time "
                       "must come from env.now".format(name))
        elif name == "os.urandom":
            ctx.report(node, "DET003", self.id, Severity.ERROR,
                       "os.urandom() is unseedable; draw from the "
                       "injected np.random.Generator")
        elif name.startswith("random.") and name.count(".") == 1:
            ctx.report(node, "DET004", self.id, Severity.ERROR,
                       "module-level '{}()' uses hidden global state; "
                       "draw from the injected np.random.Generator"
                       .format(name))
        elif (name.startswith(("np.random.", "numpy.random."))
              and name.rsplit(".", 1)[1] not in _NP_RANDOM_OK):
            ctx.report(node, "DET005", self.id, Severity.ERROR,
                       "'{}()' mutates numpy's global RNG; draw from "
                       "the injected np.random.Generator".format(name))
        if (name.rsplit(".", 1)[-1] == "default_rng"
                and not node.args and not node.keywords):
            ctx.report(node, "DET006", self.id, Severity.ERROR,
                       "unseeded default_rng(): entropy comes from the "
                       "OS, so runs are not reproducible; pass an "
                       "explicit, documented seed")

    def _check_import(self, ctx: Context, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        names = {alias.name for alias in node.names}
        if node.module == "random":
            ctx.report(node, "DET004", self.id, Severity.ERROR,
                       "importing from 'random' pulls in hidden global "
                       "RNG state; use the injected np.random.Generator")
        elif node.module == "time" and names & _WALL_CLOCK_NAMES:
            ctx.report(node, "DET001", self.id, Severity.ERROR,
                       "importing wall-clock functions from 'time'; "
                       "use the simulated clock (env.now)")
        elif node.module == "os" and "urandom" in names:
            ctx.report(node, "DET003", self.id, Severity.ERROR,
                       "importing os.urandom; draw from the injected "
                       "np.random.Generator")


# -- process discipline ---------------------------------------------------

#: Method names whose call results are (or wrap) kernel events; a yield
#: of one of these marks the enclosing generator as a sim process.
_EVENTISH_ATTRS = {
    "timeout", "event", "process", "all_of", "any_of", "request",
    "put", "get", "delay", "succeed", "send",
}
#: Yielded expression types that can never be an Event.
_NON_EVENT_YIELDS = (
    ast.Constant, ast.JoinedStr, ast.List, ast.Tuple, ast.Dict, ast.Set,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.Compare, ast.BoolOp,
)


def _eventish(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        return (isinstance(node.func, ast.Attribute)
                and node.func.attr in _EVENTISH_ATTRS)
    if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                  (ast.BitOr, ast.BitAnd)):
        # Event composition: ``req | env.timeout(...)``.
        return _eventish(node.left) or _eventish(node.right)
    return False


class ProcessProtocolRule(Rule):
    """Generator-protocol discipline for simulation processes.

    A sim process may only yield Events; the kernel throws
    ``SimulationError`` at *run* time when it does not
    (``Process._resume``), but only on the paths an experiment happens
    to execute.  A generator is treated as a sim process when it yields
    at least one event-producing call (``env.timeout(...)``,
    ``pool.request()``, ...) or its docstring says "Process generator".
    """

    id = "process-protocol"
    description = "generator-protocol violations in sim processes"
    codes = ("PROC001", "PROC002", "PROC003")

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(_FunctionRuleVisitor):
            def check_function(self, node) -> None:
                rule._check(ctx, node)

        return Visitor(ctx)

    def _check(self, ctx: Context, func) -> None:
        yields = [node for node in _own_nodes(func)
                  if isinstance(node, ast.Yield)]
        if not yields:
            return
        for node in yields:
            if node.value is None:
                ctx.report(node, "PROC001", self.id, Severity.WARNING,
                           "bare 'yield' in generator '{}': yields None, "
                           "which the kernel rejects at run time"
                           .format(func.name))
        docstring = ast.get_docstring(func) or ""
        is_process = ("process generator" in docstring.lower()
                      or any(_eventish(node.value) for node in yields
                             if node.value is not None))
        if not is_process:
            return
        for node in yields:
            value = node.value
            if value is None:
                continue
            if isinstance(value, _NON_EVENT_YIELDS) or (
                    isinstance(value, ast.BinOp)
                    and not isinstance(value.op, (ast.BitOr, ast.BitAnd))):
                ctx.report(node, "PROC002", self.id, Severity.ERROR,
                           "sim process '{}' yields a non-Event "
                           "expression".format(func.name))
        for node in _own_nodes(func):
            if isinstance(node, ast.Return) and node.value is not None:
                ctx.report(node, "PROC003", self.id, Severity.WARNING,
                           "'return <value>' mixed with yields in sim "
                           "process '{}'; make sure every waiter reads "
                           "the process value".format(func.name))


# -- resource safety ------------------------------------------------------

class ResourceSafetyRule(Rule):
    """Every ``acquire()`` needs a ``release()`` on all paths.

    A leaked slot never crashes: the pool just gets permanently smaller,
    which surfaces minutes of simulated time later as phantom pool
    exhaustion — indistinguishable from the millibottleneck symptom the
    experiments are trying to measure.  The check is per-function and
    syntactic: a release counts as "on all paths" when it is reachable
    without entering a conditional branch, or sits in a ``finally``
    block.  The context-manager form is immune by construction.
    """

    id = "resource-leak"
    description = "acquire() without release() on all paths"
    codes = ("RES001", "RES002")

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(_FunctionRuleVisitor):
            def check_function(self, node) -> None:
                rule._check(ctx, node)

        return Visitor(ctx)

    @staticmethod
    def _calls_on(node: ast.AST, method: str) -> dict[str, ast.Call]:
        """receiver-expression -> first ``<receiver>.<method>(...)`` call."""
        out: dict[str, ast.Call] = {}
        for child in _own_nodes(node):
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == method):
                receiver = _dotted(child.func.value)
                if receiver is not None and receiver not in out:
                    out[receiver] = child
        return out

    @classmethod
    def _guaranteed_releases(cls, stmts) -> set[str]:
        """Receivers whose ``release()`` runs on every non-raising path."""
        out: set[str] = set()
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                out |= cls._guaranteed_releases(stmt.finalbody)
                if not stmt.handlers:
                    out |= cls._guaranteed_releases(stmt.body)
                out |= cls._guaranteed_releases(stmt.orelse)
            elif isinstance(stmt, ast.With):
                out |= cls._guaranteed_releases(stmt.body)
            elif isinstance(stmt, ast.If):
                out |= (cls._guaranteed_releases(stmt.body)
                        & cls._guaranteed_releases(stmt.orelse))
            elif isinstance(stmt, (ast.For, ast.While, ast.FunctionDef,
                                   ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            else:
                for receiver in cls._calls_on(stmt, "release"):
                    out.add(receiver)
                # A statement-level call node itself (Expr wraps it).
                if (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)
                        and isinstance(stmt.value.func, ast.Attribute)
                        and stmt.value.func.attr == "release"):
                    receiver = _dotted(stmt.value.func.value)
                    if receiver is not None:
                        out.add(receiver)
        return out

    def _check(self, ctx: Context, func) -> None:
        if (func.name in ("acquire", "try_acquire")
                or func.name.startswith(("acquire_", "try_acquire_"))):
            # Wrapper methods forwarding to an inner pool hand the slot
            # to their caller by design.
            return
        acquired = self._calls_on(func, "acquire")
        if not acquired:
            return
        released = self._calls_on(func, "release")
        guaranteed = self._guaranteed_releases(func.body)
        for receiver, call in acquired.items():
            if receiver not in released:
                ctx.report(call, "RES001", self.id, Severity.WARNING,
                           "'{}.acquire()' has no matching release() in "
                           "this function; prefer the context-manager "
                           "form".format(receiver))
            elif receiver not in guaranteed:
                ctx.report(call, "RES002", self.id, Severity.WARNING,
                           "'{}.release()' is conditional: not reached "
                           "on every path from acquire(); move it to a "
                           "finally block or use the context-manager "
                           "form".format(receiver))


# -- float-time hygiene ---------------------------------------------------

def _time_like(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    if (name == "now" or name == "timestamp"
            or name.endswith(("_at", "_time", "_ts"))):
        return name
    return None


class FloatTimeComparisonRule(Rule):
    """Simulation timestamps are floats: never compare with ``==``.

    Two events at "the same" time routinely differ in the last ulp
    (``0.1 + 0.2 != 0.3``); an equality test that happens to hold under
    one summation order silently flips when the schedule changes.
    """

    id = "float-time-eq"
    description = "== / != between simulation timestamps"
    codes = ("FLT001",)

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def visit_Compare(self, node: ast.Compare) -> None:
                rule._check(ctx, node)
                self.generic_visit(node)

        return Visitor()

    def _check(self, ctx: Context, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        if any(isinstance(op, ast.Constant) and op.value is None
               for op in operands):
            return  # `x == None` is someone else's lint.
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                name = _time_like(left) or _time_like(right)
                if name is not None:
                    ctx.report(node, "FLT001", self.id, Severity.WARNING,
                               "float equality on timestamp '{}'; compare "
                               "with <=/>= bounds or an explicit tolerance"
                               .format(name))
                    return
            left = right


# -- slots enforcement ----------------------------------------------------

#: Base-class names that make ``__slots__`` pointless or illegal.
_SLOTS_EXEMPT_BASES = (
    "Exception", "BaseException", "Protocol", "NamedTuple", "TypedDict",
)


class MissingSlotsRule(Rule):
    """Classes in ``sim/`` hot-path modules must declare ``__slots__``.

    Events and processes are allocated once per simulated request; an
    accidental ``__dict__`` regresses the PR 1 kernel optimisations by
    ~56 bytes and one dict allocation per instance.  Scoped to files
    under a ``sim`` directory; exception types (and enums, protocols,
    typed dicts) are exempt.
    """

    id = "missing-slots"
    description = "hot-path class without __slots__"
    codes = ("SLOT001",)

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self
        applies = "sim" in ctx.path.replace("\\", "/").split("/")

        class Visitor(ast.NodeVisitor):
            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                if applies:
                    rule._check(ctx, node)
                self.generic_visit(node)

        return Visitor()

    @staticmethod
    def _exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = (_dotted(base) or "").rsplit(".", 1)[-1]
            if (name in _SLOTS_EXEMPT_BASES
                    or name.endswith(("Error", "Exception", "Warning",
                                      "Interrupt", "Enum"))):
                return True
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            if (_dotted(target) or "").rsplit(".", 1)[-1] == "dataclass":
                return True
        return False

    def _check(self, ctx: Context, node: ast.ClassDef) -> None:
        if self._exempt(node):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets):
                return
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"):
                return
        ctx.report(node, "SLOT001", self.id, Severity.WARNING,
                   "class '{}' in a sim hot-path module has no "
                   "__slots__; instances grow a __dict__ and regress "
                   "kernel allocation costs".format(node.name))


# -- delay literals -------------------------------------------------------

_NONFINITE_NAMES = {"nan", "inf", "infinity", "ninf", "pinf"}
_NONFINITE_ROOTS = {"math", "np", "numpy"}


def _nonfinite_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float" and len(node.args) == 1:
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value.strip().lstrip("+-").lower() in {
                "nan", "inf", "infinity"}
    name = _dotted(node)
    if name and "." in name:
        root, leaf = name.split(".", 1)[0], name.rsplit(".", 1)[-1]
        return (root in _NONFINITE_ROOTS
                and leaf.lower() in _NONFINITE_NAMES)
    return False


class BadDelayRule(Rule):
    """No NaN/inf/negative delay may reach ``schedule()``/``timeout()``.

    The kernel validates delays at run time (a NaN key would corrupt the
    heap invariant silently); this catches the literal cases at review
    time, before the 20-minute run that would hit them.
    """

    id = "bad-delay"
    description = "non-finite or negative delay literal"
    codes = ("NAN001", "NAN002")

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                rule._check(ctx, node)
                self.generic_visit(node)

        return Visitor()

    @staticmethod
    def _delay_argument(node: ast.Call) -> Optional[ast.AST]:
        attr = node.func.attr if isinstance(node.func, ast.Attribute) \
            else (node.func.id if isinstance(node.func, ast.Name) else None)
        if attr == "timeout":
            for keyword in node.keywords:
                if keyword.arg == "delay":
                    return keyword.value
            return node.args[0] if node.args else None
        if attr == "schedule":
            for keyword in node.keywords:
                if keyword.arg == "delay":
                    return keyword.value
            return node.args[2] if len(node.args) > 2 else None
        return None

    def _check(self, ctx: Context, node: ast.Call) -> None:
        delay = self._delay_argument(node)
        if delay is None:
            return
        if _nonfinite_literal(delay):
            ctx.report(delay, "NAN001", self.id, Severity.ERROR,
                       "non-finite delay literal: NaN/inf delays "
                       "corrupt the event heap; the kernel rejects "
                       "them at run time")
        elif (isinstance(delay, ast.UnaryOp)
                and isinstance(delay.op, ast.USub)
                and isinstance(delay.operand, ast.Constant)
                and isinstance(delay.operand.value, (int, float))
                and delay.operand.value != 0):
            ctx.report(delay, "NAN002", self.id, Severity.ERROR,
                       "negative delay literal: events cannot be "
                       "scheduled in the past")


# -- retry loops ----------------------------------------------------------

#: Waiting-call names whose yielded result marks a loop iteration as a
#: retry pause (``yield env.timeout(backoff)`` and friends).
_PAUSE_ATTRS = {"timeout", "sleep", "delay"}


def _loop_level_nodes(loop: ast.While) -> Iterable[ast.AST]:
    """Walk a loop's body without entering nested loops or functions.

    ``break``/``continue`` found here bind to *this* loop; statements
    inside a nested ``for``/``while`` bind to the inner one.
    """
    stack = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTIONS + (ast.Lambda, ast.While, ast.For)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_pause_yield(node: ast.AST) -> bool:
    return (isinstance(node, ast.Yield)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr in _PAUSE_ATTRS)


class UnboundedRetryRule(Rule):
    """Retry loops must be bounded by attempts or a deadline.

    The resilience layer made pause-and-retry a first-class idiom
    (``RetryPolicy.max_attempts``, the balancer's ``retry_pause``); the
    failure mode it must never reintroduce is the unbounded variant — a
    ``while True`` that sleeps and continues forever turns one Error-state
    backend into an infinite in-simulation spin that no experiment
    duration bounds, and under fault injection it holds a client (and its
    connection slots) hostage for the rest of the run.  A loop counts as
    a retry loop when, at its own level, it both yields a pause
    (``env.timeout(...)``/``sleep``/``delay``) and executes ``continue``;
    it is bounded when that level also has a ``break``, ``raise``, or
    ``return``, or when the loop test itself can go false.
    """

    id = "retry-bound"
    description = "while-True retry loop with no attempt cap or deadline"
    codes = ("RETRY001",)

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def visit_While(self, node: ast.While) -> None:
                rule._check(ctx, node)
                self.generic_visit(node)

        return Visitor()

    def _check(self, ctx: Context, loop: ast.While) -> None:
        # Only `while True:` can spin forever on continue alone; any
        # real test is itself the bound.
        if not (isinstance(loop.test, ast.Constant)
                and loop.test.value is True):
            return
        has_pause = has_continue = False
        for node in _loop_level_nodes(loop):
            if isinstance(node, (ast.Break, ast.Raise, ast.Return)):
                return
            if _is_pause_yield(node):
                has_pause = True
            elif isinstance(node, ast.Continue):
                has_continue = True
        if has_pause and has_continue:
            ctx.report(loop, "RETRY001", self.id, Severity.WARNING,
                       "unbounded retry loop: 'while True' pauses and "
                       "continues with no attempt cap, deadline, break, "
                       "or raise on any path; bound it like "
                       "RetryPolicy.max_attempts does")


# -- seed threading -------------------------------------------------------

#: Builder callables that accept the experiment's generator, and the
#: 1-based position of their ``rng`` parameter.  Calling one without it
#: silently falls back to ``DEFAULT_BUILD_SEED`` / ``DEFAULT_FAULT_SEED``
#: — deterministic, but decoupled from the experiment's seed.
_SEEDED_BUILDERS = {
    "build_system": 4,
    "build_from_spec": 4,
    "FaultInjector": 2,
}


class SeedThreadingRule(Rule):
    """Topology and fault builders must thread the injected RNG.

    ``build_system``/``build_from_spec``/``FaultInjector`` all take the
    experiment's seeded generator; omitting it falls back to a fixed
    build seed, which is reproducible but *wrong* — the balancers and
    fault schedules stop varying with ``config.seed``, so replicate
    runs silently share randomness.  The fallback exists for ad-hoc
    notebook use; production call sites must pass ``rng=``.
    """

    id = "seed-threading"
    description = "system/fault builder called without the injected RNG"
    codes = ("SEED001",)

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                rule._check(ctx, node)
                self.generic_visit(node)

        return Visitor()

    def _check(self, ctx: Context, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        if name.split(".", 1)[0] in ("self", "cls"):
            # ``self.build_system(...)`` is a same-named method on this
            # object, not the topology builder — the instance already
            # owns its rng.
            return
        short = name.rsplit(".", 1)[-1]
        position = _SEEDED_BUILDERS.get(short)
        if position is None:
            return
        if len(node.args) >= position:
            return  # rng passed positionally
        for keyword in node.keywords:
            if keyword.arg == "rng" or keyword.arg is None:
                return  # rng= given, or **kwargs may carry it
        ctx.report(node, "SEED001", self.id, Severity.WARNING,
                   "'{}()' without rng=: falls back to the fixed build "
                   "seed, decoupling this system from the experiment's "
                   "seed; thread the injected generator".format(short))


# -- hot-path performance -------------------------------------------------

#: heapq functions whose bare-name use marks a hand-rolled heap.
_HEAPQ_FUNCS = {
    "heappush", "heappop", "heapify", "heappushpop", "heapreplace",
    "nsmallest", "nlargest",
}
#: Per-event classes whose direct construction bypasses a free list or
#: inline factory (``env.timeout()``/``env.event()``/the tracer's
#: ``__new__``-based span builders).
_POOLED_CLASSES = {"Event", "Timeout", "Span"}
#: The scheduler module owns the overflow heap; it is the one place
#: heapq belongs.
_SCHEDULER_MODULE = "calendar.py"


class PerfHotPathRule(Rule):
    """Hot paths must go through the scheduler and pool APIs.

    The round-2 kernel work moved every per-event cost behind two
    chokepoints: the :class:`~repro.sim.calendar.CalendarQueue` (the
    only sanctioned event ordering structure — its overflow heap is an
    implementation detail of ``calendar.py``) and the free-list/inline
    factories (``env.timeout()``, ``env.event()``, the tracer's
    ``Span.__new__`` builders).  Code under ``sim``/``tracing`` that
    hand-rolls a ``heapq`` schedule re-introduces the O(log n) sifts
    the calendar queue replaced, and a loop that constructs
    ``Event``/``Timeout``/``Span`` instances directly re-introduces the
    allocation churn the pools eliminated — both are invisible in tests
    and only surface as a throughput regression in ``bench-smoke``.
    """

    id = "perf-hot-path"
    description = "hot-path code bypassing the scheduler/pool APIs"
    codes = ("PERF001", "PERF002")

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self
        parts = ctx.path.replace("\\", "/").split("/")
        applies = "sim" in parts or "tracing" in parts
        is_scheduler = parts[-1] == _SCHEDULER_MODULE

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self._loop_depth = 0
                self._func_stack: list[str] = []

            def visit_Import(self, node: ast.Import) -> None:
                if applies and not is_scheduler:
                    for alias in node.names:
                        if alias.name.split(".", 1)[0] == "heapq":
                            rule._report_heapq(ctx, node)

            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                if (applies and not is_scheduler and not node.level
                        and node.module == "heapq"):
                    rule._report_heapq(ctx, node)

            def visit_Call(self, node: ast.Call) -> None:
                if applies:
                    in_setup = any(rule._is_setup_name(name)
                                   for name in self._func_stack)
                    rule._check_call(ctx, node, is_scheduler,
                                     0 if in_setup else self._loop_depth)
                self.generic_visit(node)

            def visit_For(self, node: ast.For) -> None:
                self._loop_depth += 1
                self.generic_visit(node)
                self._loop_depth -= 1

            visit_While = visit_For

            def visit_FunctionDef(self, node) -> None:
                # A function body starts its own loop context: a loop
                # *containing* a def does not make the def's body hot.
                self._func_stack.append(node.name)
                outer_depth, self._loop_depth = self._loop_depth, 0
                self.generic_visit(node)
                self._loop_depth = outer_depth
                self._func_stack.pop()

            visit_AsyncFunctionDef = visit_FunctionDef

        return Visitor()

    @staticmethod
    def _is_setup_name(name: str) -> bool:
        """Constructors and warm-up helpers allocate by design.

        ``__init__``/``__new__`` and ``setup``/``prewarm``/``warm``-
        style helpers run once per object or per experiment, not once
        per event — a pool-class construction loop there is the free
        list being *filled*, not bypassed.
        """
        bare = name.lstrip("_")
        return (name in ("__init__", "__new__", "__init_subclass__")
                or bare.startswith(("setup", "prewarm", "warm",
                                    "build", "make_", "init_")))

    def _report_heapq(self, ctx: Context, node: ast.AST) -> None:
        ctx.report(node, "PERF001", self.id, Severity.WARNING,
                   "direct heapq use in a sim/tracing hot path: event "
                   "ordering belongs to the CalendarQueue scheduler "
                   "(Environment.schedule/timeout); hand-rolled heaps "
                   "re-introduce the O(log n) sifts it replaced")

    def _check_call(self, ctx: Context, node: ast.Call,
                    is_scheduler: bool, loop_depth: int) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        root = name.split(".", 1)[0]
        short = name.rsplit(".", 1)[-1]
        if not is_scheduler and (root == "heapq"
                                 or ("." not in name
                                     and short in _HEAPQ_FUNCS)):
            self._report_heapq(ctx, node)
            return
        if loop_depth and "." not in name and short in _POOLED_CLASSES:
            ctx.report(node, "PERF002", self.id, Severity.WARNING,
                       "per-event {}(...) construction inside a loop "
                       "bypasses the free-list/factory APIs; use "
                       "env.timeout()/env.event() (or the tracer's "
                       "span builders), or hoist the allocation out "
                       "of the loop".format(short))


# -- queue bounds ---------------------------------------------------------

#: Queue constructors and the keyword that bounds each.
_QUEUE_BOUND_KWARG = {
    "Store": "capacity",
    "deque": "maxlen",
    "Queue": "maxsize",
    "LifoQueue": "maxsize",
    "PriorityQueue": "maxsize",
}


class QueueBoundRule(Rule):
    """Request-path queues in tier and control-plane code must be bounded.

    The paper's causal chain starts where a queue absorbs a stall
    without limit: an unbounded buffer between tiers hides a
    millibottleneck until it surfaces downstream as an accept-queue
    overflow, a packet drop, and a retransmission-driven VLRT.  The
    control plane's whole point is bounded buffering (leveling
    ``capacity``, admission bucket, bulkhead slots), so any
    ``Store``/``deque``/``Queue`` constructed in ``tiers/`` or
    ``controlplane/`` without its bound argument is either a latent
    millibottleneck amplifier or needs a
    ``# statan: ignore[QUEUE001]`` stating the invariant that bounds
    it externally.
    """

    id = "queue-bound"
    description = "unbounded queue construction in tier/control-plane code"
    codes = ("QUEUE001",)

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self
        parts = ctx.path.replace("\\", "/").split("/")
        applies = "tiers" in parts or "controlplane" in parts

        class Visitor(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if applies:
                    rule._check(ctx, node)
                self.generic_visit(node)

        return Visitor()

    def _check(self, ctx: Context, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        short = name.rsplit(".", 1)[-1]
        bound = _QUEUE_BOUND_KWARG.get(short)
        if bound is None:
            return
        if any(keyword.arg == bound for keyword in node.keywords):
            return
        # Positional bounds: Store(env, capacity) / deque(iterable,
        # maxlen) / Queue(maxsize) pass the bound as the last expected
        # positional argument.
        positional_bound = {"Store": 2, "deque": 2, "Queue": 1,
                            "LifoQueue": 1, "PriorityQueue": 1}[short]
        if len(node.args) >= positional_bound:
            return
        ctx.report(node, "QUEUE001", self.id, Severity.WARNING,
                   "unbounded {}(...) on the request path: an unlimited "
                   "queue absorbs a millibottleneck silently and "
                   "re-emits it as drops downstream; pass {}= or "
                   "suppress with the bounding invariant".format(
                       short, bound))


# -- shard-ring determinism -----------------------------------------------

#: RNG draw methods whose presence in ring construction makes the ring
#: a function of generator state instead of membership.
_RNG_DRAWS = {
    "random", "integers", "choice", "shuffle", "uniform", "normal",
    "permutation", "randint", "randrange", "getrandbits", "sample",
}


class ShardRingRule(Rule):
    """Consistent-hash rings must be pure functions of membership.

    A shard ring decides which backend owns which key; every process
    (and every run) must compute the *same* ring, or resharding moves
    keys nondeterministically and golden traces diverge across hosts.
    Three constructions break that: Python's salted ``hash()`` (varies
    per process unless ``PYTHONHASHSEED`` is pinned), any RNG draw
    (seeded or not — ring positions must depend on member names only,
    never on generator state), and iteration over an unordered ``set``
    (insertion order leaks into vnode placement).  Ring code uses keyed
    stable hashes (``blake2b``) over the *ordered* member list — see
    :mod:`repro.tiers.shard` for the sanctioned idiom.
    """

    id = "shard-ring"
    description = "nondeterministic consistent-hash ring construction"
    codes = ("SHARD001",)

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        rule = self

        class Visitor(_FunctionRuleVisitor):
            def check_function(self, node) -> None:
                if "ring" in node.name.lower():
                    rule._check_ring_function(ctx, node)

        return Visitor(ctx)

    def _check_ring_function(self, ctx: Context, func: ast.AST) -> None:
        for node in _own_nodes(func):
            if isinstance(node, ast.Call):
                self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.iter
                if isinstance(target, (ast.Set, ast.SetComp)) or (
                        isinstance(target, ast.Call)
                        and _dotted(target.func) in ("set", "frozenset")):
                    ctx.report(
                        node, "SHARD001", self.id, Severity.WARNING,
                        "ring construction iterates an unordered set: "
                        "insertion order leaks into vnode placement, so "
                        "two processes compute different rings; iterate "
                        "the ordered member list (or sorted(...))")

    def _check_call(self, ctx: Context, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is None:
            return
        if name == "hash":
            ctx.report(node, "SHARD001", self.id, Severity.WARNING,
                       "ring position from salted builtin hash(): varies "
                       "per process unless PYTHONHASHSEED is pinned; use "
                       "a keyed stable hash (hashlib.blake2b)")
            return
        parts = name.lower().split(".")
        if parts[-1] not in _RNG_DRAWS:
            return
        if (parts[0] in ("random", "np", "numpy")
                or any("rng" in part or "random" in part
                       for part in parts[:-1])):
            ctx.report(node, "SHARD001", self.id, Severity.WARNING,
                       "RNG draw inside ring construction: the ring must "
                       "be a pure function of membership (same members -> "
                       "same ring in every process); derive positions "
                       "from stable hashes of member names instead")


#: The default ruleset, in reporting order.
RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    ProcessProtocolRule(),
    ResourceSafetyRule(),
    FloatTimeComparisonRule(),
    MissingSlotsRule(),
    BadDelayRule(),
    UnboundedRetryRule(),
    SeedThreadingRule(),
    PerfHotPathRule(),
    QueueBoundRule(),
    ShardRingRule(),
)


def default_rules() -> tuple[Rule, ...]:
    """The built-in ruleset (fresh references, rules are stateless)."""
    return RULES
