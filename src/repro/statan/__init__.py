"""statan — static analysis for deterministic simulation code.

An AST-based lint framework specialised for this repository's
discrete-event kernel: determinism (no ambient time or randomness),
generator-protocol discipline for sim processes, resource-slot safety,
float-time hygiene, ``__slots__`` enforcement on kernel hot paths, and
delay-literal validation.

Programmatic entry points::

    from repro.statan import check_paths, render_text

    result = check_paths(["src/repro"])
    print(render_text(result))

Command line: ``repro-lb statan [paths ...]`` (see ``--help``).
"""

from repro.statan.engine import (
    Context,
    Finding,
    Result,
    Rule,
    Severity,
    StatanError,
    check_paths,
    check_source,
    render_json,
    render_text,
)
from repro.statan.rules import RULES, default_rules

__all__ = [
    "Context", "Finding", "Result", "Rule", "Severity", "StatanError",
    "check_paths", "check_source", "render_json", "render_text",
    "RULES", "default_rules",
]
