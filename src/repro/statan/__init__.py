"""statan — static analysis for deterministic simulation code.

An AST-based lint framework specialised for this repository's
discrete-event kernel: determinism (no ambient time or randomness),
generator-protocol discipline for sim processes, resource-slot safety,
float-time hygiene, ``__slots__`` enforcement on kernel hot paths, and
delay-literal validation — plus whole-program passes that compose
per-function summaries along the call graph: interprocedural seed
provenance (SEED002/SEED003), a yield-point race detector for process
generators (RACE001-003), and escaped-acquisition lifetime tracking
(RES003).

Programmatic entry points::

    from repro.statan import check_paths, render_text

    result = check_paths(["src/repro"])
    print(render_text(result))

Command line: ``repro-lb statan [paths ...]`` (see ``--help``).
CI gating uses a committed fingerprint baseline
(``--baseline statan-baseline.json``) and SARIF output
(``--format sarif``); see :mod:`repro.statan.sarif`.
"""

from repro.statan.engine import (
    Context,
    Finding,
    Result,
    Rule,
    Severity,
    StatanError,
    check_paths,
    check_source,
    render_json,
    render_text,
)
from repro.statan.program import (
    PROGRAM_RULES,
    ProgramIndex,
    ProgramRule,
    default_program_rules,
)
from repro.statan.rules import RULES, default_rules
from repro.statan.sarif import (
    load_baseline,
    render_baseline,
    render_sarif,
    write_baseline,
)

__all__ = [
    "Context", "Finding", "Result", "Rule", "Severity", "StatanError",
    "check_paths", "check_source", "render_json", "render_text",
    "RULES", "default_rules",
    "ProgramIndex", "ProgramRule", "PROGRAM_RULES",
    "default_program_rules",
    "render_sarif", "render_baseline", "load_baseline", "write_baseline",
]
