"""Whole-program statan passes: seed provenance, yield atomicity, RES003.

The per-file rules catch hazards a single function body exposes; these
passes compose the :mod:`~repro.statan.dataflow` summaries along the
:mod:`~repro.statan.callgraph` to catch the interprocedural variants:

``seed-provenance`` (SEED002, SEED003)
    Tracks RNG/seed values across call boundaries.  SEED002 fires when
    a function constructs a generator from a pinned seed while some
    transitive caller holds the experiment's generator (the seed was
    *available* and simply not threaded); helpers that build a
    generator from their own parameters (``default_rng([seed, tag])``)
    are understood and stay clean when called with caller-derived
    material.  SEED003 fires when two construction sites share one
    constant seed — their "independent" streams silently coincide, so
    replicate runs share randomness.

``yield-atomicity`` (RACE001-003)
    A cooperative DES has no preemption *between* statements, but every
    ``yield`` is a scheduling point where any other process may run.
    RACE001: a local captured from shared state before a yield is
    written back after it (lost update).  RACE002: a branch taken on
    shared state yields before acting on that same state (check, lose
    the CPU, act on a stale check).  RACE003: a yield inside iteration
    over a shared container (mutation window during iteration).  Reads
    and writes propagate through called helpers via their summaries;
    regions holding a ``Resource``/``Store`` acquisition
    (``with pool.request():`` or a ``*lock*`` context) are exempt.

``resource-escape`` (RES003)
    An acquisition that escapes the acquiring function (``try_acquire``
    wrappers returning slots) must be released, returned, stored, or
    handed on by every caller; a caller that simply drops the handle
    leaks the slot in a way the per-function RES001/002 checks cannot
    see.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from repro.statan.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    build_modules,
)
from repro.statan.dataflow import (
    FunctionSummary,
    Location,
    location_of,
    reads_in,
    summarize,
    writes_of,
)
from repro.statan.engine import Context, Finding, Severity
from repro.statan.rules import _FUNCTIONS, _eventish

__all__ = [
    "ProgramIndex", "ProgramRule", "SeedProvenanceRule",
    "YieldAtomicityRule", "ResourceEscapeRule", "default_program_rules",
    "PROGRAM_RULES", "check_program",
]


class ProgramIndex:
    """Parsed package: modules, summaries, call graph — built once."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.callgraph = CallGraph(modules)
        self.summaries: dict[str, FunctionSummary] = {}
        for qname, info in self.callgraph.functions.items():
            module = self.modules[info.path]
            self.summaries[qname] = summarize(
                info.node, qname=qname, constants=module.constants)

    @classmethod
    def build(cls, files: Sequence[tuple[str, str, ast.AST]]
              ) -> "ProgramIndex":
        return cls(build_modules(files))

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.cls is None:
            return None
        return self.modules[info.path].classes.get(info.cls)

    def summary_for(self, info: FunctionInfo) -> FunctionSummary:
        return self.summaries[info.qname]


class ProgramRule:
    """Base class for whole-program passes.

    Unlike :class:`~repro.statan.engine.Rule`, a program rule sees the
    :class:`ProgramIndex` rather than one file's tree; it still reports
    plain :class:`Finding` records so selection, suppression comments,
    severity filtering, baselines and every reporter work unchanged.
    """

    id: str = "abstract-program"
    description: str = ""
    codes: tuple[str, ...] = ()

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        raise NotImplementedError  # pragma: no cover

    def _finding(self, info: FunctionInfo, node: ast.AST, code: str,
                 severity: Severity, message: str) -> Finding:
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code, rule=self.id, severity=severity, message=message)

    def __repr__(self) -> str:  # pragma: no cover
        return "<ProgramRule {}>".format(self.id)


def _short_chain(chain: Sequence[str]) -> str:
    return " -> ".join(q.split("::", 1)[-1] for q in chain)


# -- seed provenance -------------------------------------------------------

class SeedProvenanceRule(ProgramRule):
    """Summary-based RNG/seed dataflow across call boundaries.

    Replaces guessing with provenance: a pinned-seed ``default_rng``
    two helpers below a function that *has* the experiment's generator
    is exactly the bug SEED001's call-site heuristic cannot see.
    Functions that themselves take ``rng``/``seed`` parameters are the
    sanctioned fallback shape (``rng or default_rng(DEFAULT)``) and are
    exempt from SEED002 — their call sites are SEED001's job — but
    their pinned fallback seeds still participate in SEED003's
    duplicate-stream check.
    """

    id = "seed-provenance"
    description = "RNG constructed without threading the caller's seed"
    codes = ("SEED002", "SEED003")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        findings: list[Finding] = []
        graph = index.callgraph
        roots = [qname for qname, summary in index.summaries.items()
                 if summary.rng_available()]
        parents = graph.reachable_from(roots)

        constant_sites: list[tuple[FunctionInfo, ast.Call, object]] = []
        for qname, summary in index.summaries.items():
            info = graph.functions[qname]
            for construction in summary.rng_constructions:
                if construction.kind not in ("constant", "unseeded"):
                    continue
                if construction.kind == "constant" \
                        and construction.value is not None:
                    constant_sites.append(
                        (info, construction.node, construction.value))
                if summary.rng_available():
                    continue  # documented fallback shape
                if qname in parents and parents[qname]:
                    chain = graph.chain(parents, qname)
                    findings.append(self._finding(
                        info, construction.node, "SEED002",
                        Severity.WARNING,
                        "'{}' builds a Generator from {} while its "
                        "caller chain ({}) holds the experiment's "
                        "rng/seed; thread it through instead of "
                        "pinning a fresh stream".format(
                            info.name,
                            "OS entropy"
                            if construction.kind == "unseeded"
                            else "a fixed seed",
                            _short_chain(chain))))

        # Helper call sites: ``tagged_rng(42, "probe")`` where the
        # helper builds its generator from those parameters.
        for site in graph.sites:
            helper = index.summaries.get(site.callee)
            if helper is None or not helper.returns_rng_from:
                continue
            caller = index.summaries.get(site.caller)
            caller_info = graph.functions[site.caller]
            if caller is None or caller.rng_available():
                continue
            seed_args = self._args_for(site.node, helper)
            if not seed_args:
                continue
            derived = set(caller.params)
            if any(self._derives_from(arg, derived) for arg in seed_args):
                continue
            if not all(self._constant_only(arg, index, caller_info)
                       for arg in seed_args):
                continue
            if site.caller in parents and parents[site.caller]:
                chain = graph.chain(parents, site.caller)
                findings.append(self._finding(
                    caller_info, site.node, "SEED002", Severity.WARNING,
                    "'{}' seeds the rng helper '{}' with fixed values "
                    "while its caller chain ({}) holds the "
                    "experiment's rng/seed; pass caller-derived seed "
                    "material".format(
                        caller_info.name,
                        site.callee.split("::", 1)[-1],
                        _short_chain(chain))))

        by_value: dict[object, list[tuple[FunctionInfo, ast.Call]]] = {}
        for info, node, value in constant_sites:
            by_value.setdefault(value, []).append((info, node))
        for value, sites in sorted(
                by_value.items(), key=lambda item: repr(item[0])):
            if len(sites) < 2:
                continue
            for info, node in sites:
                others = ", ".join(
                    "{}:{}".format(other.path, other_node.lineno)
                    for other, other_node in sites
                    if other_node is not node)
                findings.append(self._finding(
                    info, node, "SEED003", Severity.WARNING,
                    "constant seed {!r} also builds a Generator at {}; "
                    "the 'independent' streams coincide — derive child "
                    "seeds from one root generator (rng.integers / "
                    "SeedSequence.spawn)".format(value, others)))
        return findings

    @staticmethod
    def _args_for(call: ast.Call,
                  helper: FunctionSummary) -> list[ast.AST]:
        params = [p for p in helper.params if p != "self"]
        out: list[ast.AST] = []
        for index, arg in enumerate(call.args):
            if index < len(params) and params[index] in \
                    helper.returns_rng_from:
                out.append(arg)
        for keyword in call.keywords:
            if keyword.arg in helper.returns_rng_from:
                out.append(keyword.value)
        return out

    @staticmethod
    def _derives_from(expr: ast.AST, derived: set[str]) -> bool:
        return any(isinstance(node, ast.Name) and node.id in derived
                   for node in ast.walk(expr))

    @staticmethod
    def _constant_only(expr: ast.AST, index: ProgramIndex,
                       info: FunctionInfo) -> bool:
        constants = index.modules[info.path].constants
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id not in constants:
                return False
            if isinstance(node, (ast.Attribute, ast.Call)):
                return False
        return True


# -- yield atomicity -------------------------------------------------------

#: ``with`` context receivers that guard a critical section.
_GUARD_ATTRS = {"request", "acquire"}


def _is_guard_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr in _GUARD_ATTRS:
            return True
        name = None
        if isinstance(expr, ast.Call):
            name = expr.func.attr \
                if isinstance(expr.func, ast.Attribute) else None
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        elif isinstance(expr, ast.Name):
            name = expr.id
        if name is not None and ("lock" in name.lower()
                                 or "mutex" in name.lower()):
            return True
    return False


def _own_statements(node: ast.AST):
    """All nodes under ``node``, skipping nested function/lambda bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNCTIONS + (ast.Lambda,)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class _GeneratorAnalysis:
    """RACE001-003 over one process-generator function."""

    def __init__(self, rule: "YieldAtomicityRule", index: ProgramIndex,
                 info: FunctionInfo) -> None:
        self.rule = rule
        self.index = index
        self.info = info
        self.module = index.modules[info.path]
        self.cls = index.class_of(info)
        summary = index.summary_for(info)
        self.roots = set(summary.params) | {"self"}
        self.yield_lines = sorted(
            node.lineno for node in _own_statements(info.node)
            if isinstance(node, (ast.Yield, ast.YieldFrom)))
        self.guard_ranges = [
            (node.lineno, node.end_lineno or node.lineno)
            for node in _own_statements(info.node)
            if isinstance(node, ast.With) and _is_guard_with(node)]

    # -- helper-summary composition ---------------------------------------

    def _callees(self, call: ast.Call):
        """(summary, self_root, {callee-param: caller-arg-name}) per target."""
        out = []
        for target in self.index.callgraph.resolve_call(
                call, self.module, self.cls):
            summary = self.index.summaries.get(target.qname)
            if summary is None:
                continue
            self_root: Optional[str] = None
            if isinstance(call.func, ast.Attribute):
                receiver = call.func.value
                if isinstance(receiver, ast.Name) \
                        and receiver.id in self.roots:
                    self_root = receiver.id
            params = [p for p in summary.params if p != "self"]
            arg_map: dict[str, set[str]] = {}
            names_of = lambda expr: {  # noqa: E731 — tiny local helper
                sub.id for sub in ast.walk(expr)
                if isinstance(sub, ast.Name)}
            for position, arg in enumerate(call.args):
                if position < len(params):
                    arg_map[params[position]] = names_of(arg)
            for keyword in call.keywords:
                if keyword.arg is not None:
                    arg_map[keyword.arg] = names_of(keyword.value)
            out.append((summary, self_root, arg_map))
        return out

    def _reroot(self, loc: Location, self_root: Optional[str]
                ) -> Optional[Location]:
        root, attr = loc
        if root == "self":
            if self_root is None:
                return None
            return (self_root, attr) if self_root != "self" \
                else ("self", attr)
        return None

    def expr_reads(self, expr: ast.AST) -> set[Location]:
        """Direct reads plus (re-rooted) reads of called helpers."""
        out = reads_in(expr, self.roots)
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                for summary, self_root, _ in self._callees(node):
                    for loc in summary.ret_reads | summary.shared_reads:
                        mapped = self._reroot(loc, self_root)
                        if mapped is not None:
                            out.add(mapped)
        return out

    def stmt_writes(self, stmt: ast.AST) -> set[Location]:
        """Direct writes plus (re-rooted) writes of called helpers."""
        out = writes_of(stmt, self.roots)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                for summary, self_root, _ in self._callees(node):
                    for loc in summary.shared_writes:
                        mapped = self._reroot(loc, self_root)
                        if mapped is not None:
                            out.add(mapped)
        return out

    def stmt_param_writes(self, stmt: ast.AST
                          ) -> list[tuple[str, Location]]:
        """``(caller-local, written-location)`` flows through helpers."""
        out: list[tuple[str, Location]] = []
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                for summary, self_root, arg_map in self._callees(node):
                    for param, locs in summary.param_writes.items():
                        for local in arg_map.get(param, ()):
                            for loc in locs:
                                mapped = self._reroot(loc, self_root)
                                if mapped is not None:
                                    out.append((local, mapped))
        return out

    # -- region helpers ----------------------------------------------------

    def yields_between(self, start: int, end: int) -> bool:
        return any(start < line <= end for line in self.yield_lines)

    def guarded(self, start: int, end: int) -> bool:
        return any(lo <= start and end <= hi
                   for lo, hi in self.guard_ranges)

    # -- the checks --------------------------------------------------------

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        findings += self._race001()
        findings += self._race002()
        findings += self._race003()
        return findings

    def _race001(self) -> list[Finding]:
        taints: list[tuple[str, set[Location], int]] = []
        for node in _own_statements(self.info.node):
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                sources = self.expr_reads(node.value)
                if sources:
                    taints.append(
                        (node.targets[0].id, sources, node.lineno))
        if not taints:
            return []
        findings = []
        for stmt in _own_statements(self.info.node):
            if not isinstance(stmt, (ast.Assign, ast.AugAssign,
                                     ast.Expr)):
                continue
            value = getattr(stmt, "value", None)
            if value is None:
                continue
            used = {node.id for node in ast.walk(value)
                    if isinstance(node, ast.Name)}
            writes = set()
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                writes = writes_of(stmt, self.roots)
            flows = [(local, loc)
                     for local, loc in self.stmt_param_writes(stmt)]
            for local, sources, read_line in taints:
                if stmt.lineno <= read_line:
                    continue
                hit_locs = set()
                if local in used:
                    hit_locs |= writes & sources
                hit_locs |= {loc for flow_local, loc in flows
                             if flow_local == local and loc in sources}
                for loc in sorted(hit_locs):
                    if not self.yields_between(read_line, stmt.lineno):
                        continue
                    if self.guarded(read_line, stmt.lineno):
                        continue
                    findings.append(self.rule._finding(
                        self.info, stmt, "RACE001", Severity.WARNING,
                        "'{}' was read from '{}' on line {} and is "
                        "written back here after a yield: another "
                        "process can update '{}' in between, and this "
                        "write clobbers it (lost update); re-read "
                        "after resuming or hold the guarding resource "
                        "across the region".format(
                            local, _loc_str(loc), read_line,
                            _loc_str(loc))))
        return findings

    def _race002(self) -> list[Finding]:
        findings = []
        for branch in _own_statements(self.info.node):
            if not isinstance(branch, (ast.If, ast.While)):
                continue
            if isinstance(branch.test, ast.Constant):
                continue
            test_reads = self.expr_reads(branch.test)
            if not test_reads:
                continue
            for body in (branch.body, branch.orelse):
                if not body:
                    continue
                findings += self._check_branch(branch, body, test_reads)
        return findings

    def _check_branch(self, branch, body, test_reads) -> list[Finding]:
        start = body[0].lineno
        end = max((stmt.end_lineno or stmt.lineno) for stmt in body)
        branch_yields = [line for line in self.yield_lines
                         if start <= line <= end]
        if not branch_yields:
            return []
        findings = []
        nodes = [node for stmt in body for node in
                 [stmt] + list(_own_statements(stmt))]
        for node in nodes:
            writes = self.stmt_writes(node) if isinstance(
                node, (ast.Assign, ast.AugAssign, ast.Expr)) else set()
            stale = writes & test_reads
            if not stale:
                continue
            first_yield = min((line for line in branch_yields
                               if line < node.lineno), default=None)
            if first_yield is None:
                continue
            if self.guarded(branch.lineno, node.lineno):
                continue
            # Re-checked after resuming: a fresh read of the location
            # between the last pre-write yield and the write means the
            # code already revalidates its condition.
            last_yield = max(line for line in branch_yields
                             if line < node.lineno)
            if self._reread_between(stale, last_yield, node.lineno):
                continue
            for loc in sorted(stale):
                findings.append(self.rule._finding(
                    self.info, node, "RACE002", Severity.WARNING,
                    "branch on '{}' (line {}) yields before acting on "
                    "it here: the check can go stale while another "
                    "process runs; re-check '{}' after the yield or "
                    "guard the section with a Resource "
                    "acquisition".format(
                        _loc_str(loc), branch.lineno, _loc_str(loc))))
        return findings

    def _reread_between(self, locs: set[Location], start: int,
                        end: int) -> bool:
        for node in _own_statements(self.info.node):
            lineno = getattr(node, "lineno", None)
            if lineno is None or not (start < lineno < end):
                continue
            if isinstance(node, (ast.If, ast.While)):
                if self.expr_reads(node.test) & locs:
                    return True
            elif isinstance(node, ast.Assign) and node.value is not None:
                if reads_in(node.value, self.roots) & locs:
                    return True
        return False

    def _race003(self) -> list[Finding]:
        findings = []
        for loop in _own_statements(self.info.node):
            if not isinstance(loop, ast.For):
                continue
            target = loop.iter
            if isinstance(target, ast.Call):
                continue  # ``for x in list(self.queue)``: a snapshot
            loc = location_of(target)
            if loc is None or loc[0] not in self.roots:
                continue
            body_has_yield = any(
                isinstance(node, (ast.Yield, ast.YieldFrom))
                for stmt in loop.body for node in
                [stmt] + list(_own_statements(stmt)))
            if not body_has_yield:
                continue
            if self.guarded(loop.lineno, loop.end_lineno or loop.lineno):
                continue
            findings.append(self.rule._finding(
                self.info, loop, "RACE003", Severity.WARNING,
                "yield inside iteration over shared container '{}': "
                "another process can mutate it mid-iteration; iterate "
                "a snapshot (list(...)) or restructure the "
                "loop".format(_loc_str(loc))))
        return findings


def _loc_str(loc: Location) -> str:
    return "{}.{}".format(*loc)


class YieldAtomicityRule(ProgramRule):
    """Read-yield-write hazards in simulation process generators."""

    id = "yield-atomicity"
    description = "shared-state races across process yield points"
    codes = ("RACE001", "RACE002", "RACE003")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        findings: list[Finding] = []
        for qname, summary in index.summaries.items():
            if not summary.is_generator:
                continue
            info = index.callgraph.functions[qname]
            if not self._is_process(info.node):
                continue
            findings += _GeneratorAnalysis(self, index, info).run()
        return findings

    @staticmethod
    def _is_process(func: ast.AST) -> bool:
        docstring = ast.get_docstring(func) or ""
        if "process generator" in docstring.lower():
            return True
        for node in _own_statements(func):
            if isinstance(node, ast.Yield) and node.value is not None \
                    and _eventish(node.value):
                return True
        return False


# -- resource lifetime -----------------------------------------------------

#: Methods that retire an acquired handle.
_RELEASE_ATTRS = {"release", "cancel", "cancel_or_release", "close"}


class ResourceEscapeRule(ProgramRule):
    """Escaped acquisitions must be retired by every caller."""

    id = "resource-escape"
    description = "acquired slot escapes without a release on any path"
    codes = ("RES003",)

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        findings: list[Finding] = []
        graph = index.callgraph
        escaping = {qname for qname, summary in index.summaries.items()
                    if summary.returns_acquired}
        if not escaping:
            return findings
        for site in graph.sites:
            if site.callee not in escaping:
                continue
            caller = graph.functions[site.caller]
            caller_summary = index.summaries[site.caller]
            if caller_summary.returns_acquired \
                    or "acquire" in caller.name:
                continue  # a wrapper handing the slot further up
            handle = self._bound_name(caller.node, site.node)
            if handle is None:
                findings.append(self._finding(
                    caller, site.node, "RES003", Severity.WARNING,
                    "result of '{}' (an acquired slot) is discarded; "
                    "the slot can never be released".format(
                        site.callee.split("::", 1)[-1])))
                continue
            if self._retired_or_escapes(caller.node, handle, site.node):
                continue
            findings.append(self._finding(
                caller, site.node, "RES003", Severity.WARNING,
                "'{}' acquired via '{}' is neither released nor "
                "handed on in '{}'; the slot leaks when this "
                "function returns".format(
                    handle, site.callee.split("::", 1)[-1],
                    caller.name)))
        return findings

    @staticmethod
    def _bound_name(func: ast.AST, call: ast.Call) -> Optional[str]:
        for node in _own_statements(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            # ``endpoint = yield from mech.get_endpoint(member)`` binds
            # the generator's return value just like a plain call.
            if isinstance(value, (ast.YieldFrom, ast.Await)):
                value = value.value
            if value is call and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                return node.targets[0].id
        return None

    @staticmethod
    def _retired_or_escapes(func: ast.AST, handle: str,
                            call: ast.Call) -> bool:
        for node in _own_statements(func):
            if isinstance(node, ast.Call):
                if node is call:
                    continue
                func_expr = node.func
                if isinstance(func_expr, ast.Attribute) \
                        and isinstance(func_expr.value, ast.Name) \
                        and func_expr.value.id == handle \
                        and func_expr.attr in _RELEASE_ATTRS:
                    return True
                for arg in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    if any(isinstance(sub, ast.Name) and sub.id == handle
                           for sub in ast.walk(arg)):
                        return True  # handed to another owner
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                        isinstance(sub, ast.Name) and sub.id == handle
                        for sub in ast.walk(value)):
                    return True
            elif isinstance(node, ast.Assign):
                if node.value is not None and not (
                        isinstance(node.value, ast.Call)
                        and node.value is call):
                    targets_attr = any(
                        isinstance(target, (ast.Attribute, ast.Subscript))
                        for target in node.targets)
                    if targets_attr and any(
                            isinstance(sub, ast.Name)
                            and sub.id == handle
                            for sub in ast.walk(node.value)):
                        return True  # stored: ownership transferred
            elif isinstance(node, ast.With):
                for item in node.items:
                    if any(isinstance(sub, ast.Name) and sub.id == handle
                           for sub in ast.walk(item.context_expr)):
                        return True
        return False


#: The default whole-program passes, in reporting order.
PROGRAM_RULES: tuple[ProgramRule, ...] = (
    SeedProvenanceRule(),
    YieldAtomicityRule(),
    ResourceEscapeRule(),
)


def default_program_rules() -> tuple[ProgramRule, ...]:
    """The built-in program passes (stateless, shared instances)."""
    return PROGRAM_RULES


def check_program(files: Sequence[tuple[str, str, ast.AST]],
                  rules: Optional[Sequence[ProgramRule]] = None
                  ) -> list[Finding]:
    """Run the program passes over parsed ``(path, source, tree)`` files."""
    if rules is None:
        rules = default_program_rules()
    if not files:
        return []
    index = ProgramIndex.build(files)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check_program(index))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


# Context is re-exported for typing parity with engine.Rule users.
_ = Context
