"""Project index and call graph for whole-program statan passes.

The per-file rules in :mod:`repro.statan.rules` see one tree at a time;
the interprocedural passes in :mod:`repro.statan.program` need to know
*who calls whom* across the package.  This module builds that picture
once per run:

:class:`ModuleInfo`
    One parsed file: dotted module name, import map (local alias ->
    dotted target), module-level integer/float/string constants (used
    to resolve seeds like ``DEFAULT_BUILD_SEED``), and its classes.

:class:`FunctionInfo`
    One function or method, addressed by a qualified name
    ``pkg.mod::Class.method`` / ``pkg.mod::func``.

:class:`CallGraph`
    Edges between qualified names, built with deliberately simple
    resolution: bare names resolve through module scope and imports,
    ``self.x()``/``cls.x()`` through the enclosing class and its
    project-local bases, and ``obj.x()`` by method name against every
    project class that defines ``x`` (a conservative union — for the
    passes built on top, a spurious edge means at worst a spurious
    *suppressable* finding, while a missing edge is a silent false
    negative).

Nothing here executes project code; it is all :mod:`ast`.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.statan.rules import _dotted

__all__ = [
    "ModuleInfo", "ClassInfo", "FunctionInfo", "CallSite", "CallGraph",
    "build_modules", "module_name_for_path",
]

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path.

    ``src/repro/sim/core.py`` -> ``repro.sim.core``; the leading
    directories before the last ``src`` segment (or the whole prefix
    when there is none) are dropped, and ``__init__.py`` maps to its
    package.
    """
    parts = path.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "<module>"


@dataclass
class ClassInfo:
    """One class definition: bases by name, methods by name."""

    name: str
    module: str
    bases: tuple[str, ...]
    methods: dict[str, "FunctionInfo"] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function/method and where it lives."""

    qname: str
    name: str
    module: str
    path: str
    node: ast.AST
    cls: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ModuleInfo:
    """One parsed source file plus its resolved local namespace."""

    path: str
    name: str
    tree: ast.AST
    source: str
    #: local alias -> dotted target ("np" -> "numpy",
    #: "build_system" -> "repro.cluster.topology.build_system").
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level UPPER_CASE int/float/str constants, resolved.
    constants: dict[str, object] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _collect_imports(tree: ast.AST) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".", 1)[0]] = \
                    alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imports[alias.asname or alias.name] = \
                    "{}.{}".format(node.module, alias.name)
    return imports


def _collect_constants(tree: ast.AST) -> dict[str, object]:
    constants: dict[str, object] = {}
    for stmt in getattr(tree, "body", []):
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, (int, float, str))):
            constants[stmt.targets[0].id] = stmt.value.value
    return constants


def build_modules(
        files: Sequence[tuple[str, str, ast.AST]]) -> dict[str, ModuleInfo]:
    """Index ``(path, source, tree)`` triples into :class:`ModuleInfo`."""
    modules: dict[str, ModuleInfo] = {}
    for path, source, tree in files:
        name = module_name_for_path(path)
        info = ModuleInfo(path=path, name=name, tree=tree, source=source,
                          imports=_collect_imports(tree),
                          constants=_collect_constants(tree))
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, _FUNCTIONS):
                qname = "{}::{}".format(name, stmt.name)
                info.functions[stmt.name] = FunctionInfo(
                    qname=qname, name=stmt.name, module=name, path=path,
                    node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    name=stmt.name, module=name,
                    bases=tuple((_dotted(base) or "").rsplit(".", 1)[-1]
                                for base in stmt.bases))
                for sub in stmt.body:
                    if isinstance(sub, _FUNCTIONS):
                        qname = "{}::{}.{}".format(name, stmt.name, sub.name)
                        cls.methods[sub.name] = FunctionInfo(
                            qname=qname, name=sub.name, module=name,
                            path=path, node=sub, cls=stmt.name)
                info.classes[stmt.name] = cls
        modules[path] = info
    return modules


@dataclass
class CallSite:
    """One resolved call edge with its source location."""

    caller: str
    callee: str
    node: ast.Call


class CallGraph:
    """Callers/callees over the indexed functions."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: every FunctionInfo by qualified name.
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> every ClassInfo with that name (project-wide).
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        #: method name -> FunctionInfos across every project class.
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: dotted module name -> ModuleInfo.
        self._by_module_name: dict[str, ModuleInfo] = {}
        for module in modules.values():
            self._by_module_name[module.name] = module
            for fn in module.functions.values():
                self.functions[fn.qname] = fn
            for cls in module.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)
                for fn in cls.methods.values():
                    self.functions[fn.qname] = fn
                    self._methods_by_name.setdefault(
                        fn.name, []).append(fn)
        self.edges: dict[str, set[str]] = {}
        self.redges: dict[str, set[str]] = {}
        self.sites: list[CallSite] = []
        self._build_edges()

    # -- construction ------------------------------------------------------

    def _build_edges(self) -> None:
        for module in self.modules.values():
            for fn in list(module.functions.values()):
                self._scan_function(module, fn)
            for cls in module.classes.values():
                for fn in cls.methods.values():
                    self._scan_function(module, fn, cls)

    def _scan_function(self, module: ModuleInfo, fn: FunctionInfo,
                       cls: Optional[ClassInfo] = None) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self.resolve_call(node, module, cls):
                self.edges.setdefault(fn.qname, set()).add(callee.qname)
                self.redges.setdefault(callee.qname, set()).add(fn.qname)
                self.sites.append(CallSite(fn.qname, callee.qname, node))

    def resolve_call(self, node: ast.Call, module: ModuleInfo,
                     cls: Optional[ClassInfo] = None
                     ) -> list[FunctionInfo]:
        """Project-local targets a call may reach (possibly several)."""
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module)
        if isinstance(func, ast.Attribute):
            receiver = _dotted(func.value)
            if receiver in ("self", "cls") and cls is not None:
                target = self._resolve_method(cls, func.attr)
                if target is not None:
                    return [target]
                return []
            if receiver is not None:
                # module-qualified: ``topology.build_system(...)``.
                dotted = module.imports.get(receiver.split(".", 1)[0])
                if dotted is not None:
                    owner = self._module_by_suffix(dotted)
                    if owner is not None:
                        target = owner.functions.get(func.attr)
                        if target is not None:
                            return [target]
                        klass = owner.classes.get(func.attr)
                        if klass is not None:
                            init = klass.methods.get("__init__")
                            return [init] if init is not None else []
            # ``obj.method(...)``: union over same-named project methods.
            return list(self._methods_by_name.get(func.attr, []))
        return []

    def _resolve_name(self, name: str,
                      module: ModuleInfo) -> list[FunctionInfo]:
        fn = module.functions.get(name)
        if fn is not None:
            return [fn]
        cls = module.classes.get(name)
        if cls is not None:
            init = cls.methods.get("__init__")
            return [init] if init is not None else []
        dotted = module.imports.get(name)
        if dotted is not None and "." in dotted:
            owner_name, leaf = dotted.rsplit(".", 1)
            owner = self._module_by_suffix(owner_name)
            if owner is not None:
                fn = owner.functions.get(leaf)
                if fn is not None:
                    return [fn]
                cls = owner.classes.get(leaf)
                if cls is not None:
                    init = cls.methods.get("__init__")
                    return [init] if init is not None else []
        # A class imported under its own name and called bare:
        for cls in self._classes_by_name.get(name, []):
            init = cls.methods.get("__init__")
            if init is not None:
                return [init]
        return []

    def _resolve_method(self, cls: ClassInfo,
                        name: str) -> Optional[FunctionInfo]:
        seen: set[str] = set()
        queue: deque[ClassInfo] = deque([cls])
        while queue:
            current = queue.popleft()
            key = "{}::{}".format(current.module, current.name)
            if key in seen:
                continue
            seen.add(key)
            fn = current.methods.get(name)
            if fn is not None:
                return fn
            for base in current.bases:
                for candidate in self._classes_by_name.get(base, []):
                    queue.append(candidate)
        return None

    def _module_by_suffix(self, dotted: str) -> Optional[ModuleInfo]:
        module = self._by_module_name.get(dotted)
        if module is not None:
            return module
        for name, info in self._by_module_name.items():
            if name.endswith("." + dotted) or name == dotted:
                return info
        return None

    # -- queries -----------------------------------------------------------

    def callers_of(self, qname: str) -> set[str]:
        return self.redges.get(qname, set())

    def callees_of(self, qname: str) -> set[str]:
        return self.edges.get(qname, set())

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str]:
        """BFS over call edges; returns ``{reached: parent}`` links."""
        parents: dict[str, str] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root not in parents:
                parents[root] = ""
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    def chain(self, parents: dict[str, str], qname: str) -> list[str]:
        """Root-to-``qname`` path through the BFS ``parents`` links."""
        out = [qname]
        while parents.get(out[-1]):
            out.append(parents[out[-1]])
        return list(reversed(out))
