"""The statan rule engine.

``statan`` is an AST-based linter specialised for this simulation
codebase: the kernel's golden-trace hash (tests/test_golden_trace.py)
*detects* determinism breakage after the fact, while statan catches the
classic causes — wall-clock reads, global randomness, generator-protocol
abuse, leaked resource slots — at review time, before they corrupt a
20-minute experiment run.

The engine parses each file once, hands the tree to every active rule
(each rule contributes an :mod:`ast` visitor via
:meth:`Rule.make_visitor`), collects :class:`Finding` records, and
filters them through per-line suppression comments::

    yield  # statan: ignore[process-protocol]
    t = time.time()  # statan: ignore

A bare ``# statan: ignore`` suppresses every rule on that line; the
bracketed form takes a comma-separated list of rule ids
(``determinism``) or finding codes (``DET001``).

Reporters: :func:`render_text` for humans, :func:`render_json` for
tooling (schema version 1, covered by ``tests/test_statan.py``).
"""

from __future__ import annotations

import ast
import enum
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "Severity", "Finding", "Rule", "Context", "Result", "StatanError",
    "check_source", "check_paths", "render_text", "render_json",
]


class StatanError(Exception):
    """Internal statan failure (bad arguments, unreadable paths)."""


class Severity(enum.IntEnum):
    """Finding severity; comparisons follow the numeric order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise StatanError(
                "unknown severity {!r}; choose from {}".format(
                    label, ", ".join(s.label for s in cls))) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    severity: Severity
    message: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }


class Context:
    """Per-file state shared by the engine and the rule visitors."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, code: str, rule: str,
               severity: Severity, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            rule=rule,
            severity=severity,
            message=message,
        ))


class Rule:
    """Base class for statan rules.

    Subclasses set :attr:`id` (the family id used by ``--select`` /
    ``--ignore`` and suppression comments), :attr:`codes` (the finding
    codes the rule can emit), and implement :meth:`make_visitor`.
    """

    id: str = "abstract"
    description: str = ""
    codes: tuple[str, ...] = ()

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:
        return "<Rule {}>".format(self.id)


@dataclass
class Result:
    """Aggregate outcome of one statan run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def counts(self) -> dict[str, int]:
        out = {severity.label: 0 for severity in Severity}
        for finding in self.findings:
            out[finding.severity.label] += 1
        return out

    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)


# -- suppression comments -------------------------------------------------

#: Matched anywhere inside a COMMENT token, so the marker composes with
#: other trailing comments (``# pragma: no cover; statan: ignore[...]``).
_SUPPRESS_RE = re.compile(
    r"statan:\s*ignore(?:\[(?P<ids>[^\]]*)\])?")

#: Sentinel meaning "every rule suppressed on this line".
_ALL = "*"


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule ids/codes (or ``_ALL``)."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            ids = match.group("ids")
            if ids is None:
                names = {_ALL}
            else:
                names = {name.strip() for name in ids.split(",")
                         if name.strip()}
                if not names:
                    names = {_ALL}
            out.setdefault(token.start[0], set()).update(names)
    except tokenize.TokenError:
        # The parser already produced a syntax-error finding; comments
        # past the failure point simply cannot suppress anything.
        pass
    return out


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, set[str]]) -> bool:
    names = suppressions.get(finding.line)
    if not names:
        return False
    return (_ALL in names or finding.rule in names
            or finding.code in names)


# -- checking -------------------------------------------------------------

def _select_rules(rules: Sequence[Rule],
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None) -> list[Rule]:
    known = {rule.id for rule in rules}
    for name in list(select or []) + list(ignore or []):
        if name not in known:
            raise StatanError(
                "unknown rule id {!r}; available: {}".format(
                    name, ", ".join(sorted(known))))
    active = list(rules)
    if select:
        wanted = set(select)
        active = [rule for rule in active if rule.id in wanted]
    if ignore:
        dropped = set(ignore)
        active = [rule for rule in active if rule.id not in dropped]
    return active


def check_source(source: str, path: str = "<string>",
                 rules: Optional[Sequence[Rule]] = None,
                 apply_suppressions: bool = True) -> list[Finding]:
    """Check one source string and return its (sorted) findings."""
    if rules is None:
        from repro.statan.rules import default_rules
        rules = default_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) or 1,
            code="STX001", rule="syntax-error", severity=Severity.ERROR,
            message="file does not parse: {}".format(exc.msg))]

    ctx = Context(path, source, tree)
    for rule in rules:
        rule.make_visitor(ctx).visit(tree)

    findings = sorted(ctx.findings,
                      key=lambda f: (f.line, f.col, f.code))
    if apply_suppressions:
        marks = _suppressions(source)
        findings = [finding for finding in findings
                    if not _is_suppressed(finding, marks)]
    return findings


def _iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise StatanError("no such file or directory: {}".format(raw))
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(part.startswith(".") or part == "__pycache__"
                       for part in parts):
                    continue
                yield candidate
        else:
            yield path


def check_paths(paths: Sequence[str],
                rules: Optional[Sequence[Rule]] = None,
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None,
                min_severity: Severity = Severity.INFO) -> Result:
    """Check every ``*.py`` file under ``paths`` and aggregate findings."""
    if rules is None:
        from repro.statan.rules import default_rules
        rules = default_rules()
    rules = _select_rules(rules, select=select, ignore=ignore)

    result = Result()
    for path in _iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise StatanError("cannot read {}: {}".format(path, exc))
        raw = check_source(source, str(path), rules,
                           apply_suppressions=False)
        marks = _suppressions(source)
        for finding in raw:
            if _is_suppressed(finding, marks):
                result.suppressed += 1
            elif finding.severity >= min_severity:
                result.findings.append(finding)
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


# -- reporters ------------------------------------------------------------

def render_text(result: Result) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        "{}:{}:{}: {} [{}] {}".format(
            finding.path, finding.line, finding.col, finding.code,
            finding.severity.label, finding.message)
        for finding in result.findings
    ]
    counts = result.counts()
    summary = ("checked {} file{}: {} error(s), {} warning(s), "
               "{} info, {} suppressed".format(
                   result.files_checked,
                   "" if result.files_checked == 1 else "s",
                   counts["error"], counts["warning"], counts["info"],
                   result.suppressed))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: Result) -> str:
    """Stable machine-readable report (schema version 1)."""
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": result.counts(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
