"""The statan rule engine.

``statan`` is an AST-based linter specialised for this simulation
codebase: the kernel's golden-trace hash (tests/test_golden_trace.py)
*detects* determinism breakage after the fact, while statan catches the
classic causes — wall-clock reads, global randomness, generator-protocol
abuse, leaked resource slots — at review time, before they corrupt a
20-minute experiment run.

The engine parses each file once, hands the tree to every active rule
(each rule contributes an :mod:`ast` visitor via
:meth:`Rule.make_visitor`), collects :class:`Finding` records, and
filters them through per-line suppression comments::

    yield  # statan: ignore[process-protocol]
    t = time.time()  # statan: ignore

A bare ``# statan: ignore`` suppresses every rule on that line; the
bracketed form takes a comma-separated list of rule ids
(``determinism``) or finding codes (``DET001``).  Suppressions attach
to *statements*, not physical lines: a marker anywhere on a multi-line
call, a decorator, or a compound-statement header covers findings
reported anywhere on that statement's span.

Beyond the per-file rules, :func:`check_paths` runs the whole-program
passes from :mod:`repro.statan.program` over every parsed file at
once, and every finding carries a content-stable fingerprint so a
committed baseline (:mod:`repro.statan.sarif`) can gate CI on *new*
findings only.

Reporters: :func:`render_text` for humans, :func:`render_json` for
tooling (schema version 2, covered by ``tests/test_statan.py``), and
:func:`repro.statan.sarif.render_sarif` for code-scanning UIs.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "Severity", "Finding", "Rule", "Context", "Result", "StatanError",
    "check_source", "check_paths", "render_text", "render_json",
]


class StatanError(Exception):
    """Internal statan failure (bad arguments, unreadable paths)."""


class Severity(enum.IntEnum):
    """Finding severity; comparisons follow the numeric order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise StatanError(
                "unknown severity {!r}; choose from {}".format(
                    label, ", ".join(s.label for s in cls))) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    severity: Severity
    message: str
    #: Content-stable identity (``repro.statan.sarif``); filled by
    #: :func:`check_paths`, empty for bare :func:`check_source` runs.
    fingerprint: str = ""

    def with_fingerprint(self, fingerprint: str) -> "Finding":
        return dataclasses.replace(self, fingerprint=fingerprint)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class Context:
    """Per-file state shared by the engine and the rule visitors."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, code: str, rule: str,
               severity: Severity, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            rule=rule,
            severity=severity,
            message=message,
        ))


class Rule:
    """Base class for statan rules.

    Subclasses set :attr:`id` (the family id used by ``--select`` /
    ``--ignore`` and suppression comments), :attr:`codes` (the finding
    codes the rule can emit), and implement :meth:`make_visitor`.
    """

    id: str = "abstract"
    description: str = ""
    codes: tuple[str, ...] = ()

    def make_visitor(self, ctx: Context) -> ast.NodeVisitor:
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:
        return "<Rule {}>".format(self.id)


@dataclass
class Result:
    """Aggregate outcome of one statan run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Known findings hidden by a ``--baseline`` file.
    baselined: int = 0

    def counts(self) -> dict[str, int]:
        out = {severity.label: 0 for severity in Severity}
        for finding in self.findings:
            out[finding.severity.label] += 1
        return out

    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)


# -- suppression comments -------------------------------------------------

#: Matched anywhere inside a COMMENT token, so the marker composes with
#: other trailing comments (``# pragma: no cover; statan: ignore[...]``).
_SUPPRESS_RE = re.compile(
    r"statan:\s*ignore(?:\[(?P<ids>[^\]]*)\])?")

#: Sentinel meaning "every rule suppressed on this line".
_ALL = "*"


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule ids/codes (or ``_ALL``)."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            ids = match.group("ids")
            if ids is None:
                names = {_ALL}
            else:
                names = {name.strip() for name in ids.split(",")
                         if name.strip()}
                if not names:
                    names = {_ALL}
            out.setdefault(token.start[0], set()).update(names)
    except tokenize.TokenError:
        # The parser already produced a syntax-error finding; comments
        # past the failure point simply cannot suppress anything.
        pass
    return out


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, set[str]]) -> bool:
    names = suppressions.get(finding.line)
    if not names:
        return False
    return (_ALL in names or finding.rule in names
            or finding.code in names)


def _statement_spans(tree: ast.AST) -> dict[int, set[int]]:
    """Line -> peer lines belonging to the same logical statement.

    A suppression comment binds to the whole statement it sits on, not
    just its physical line: a marker on any line of a multi-line call,
    on a decorator, or on a wrapped ``def``/``if`` header covers
    findings reported anywhere in that span.  Compound statements
    contribute only their *header* (up to the first body statement), so
    a marker on ``for ...:`` does not blanket the loop body.
    """
    spans: dict[int, set[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        for decorator in getattr(node, "decorator_list", []):
            start = min(start, decorator.lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            end = body[0].lineno - 1
        else:
            end = node.end_lineno or node.lineno
        if end < start:
            end = start
        if end == start:
            continue
        lines = set(range(start, end + 1))
        group: set[int] = set(lines)
        for line in lines:
            group |= spans.get(line, set())
        for line in group:
            spans[line] = group
    return spans


def _expand_suppressions(marks: dict[int, set[str]],
                         tree: ast.AST) -> dict[int, set[str]]:
    """Propagate suppression marks across each statement's span."""
    if not marks:
        return marks
    spans = _statement_spans(tree)
    expanded: dict[int, set[str]] = {
        line: set(names) for line, names in marks.items()}
    for line, names in marks.items():
        for peer in spans.get(line, ()):
            expanded.setdefault(peer, set()).update(names)
    return expanded


# -- checking -------------------------------------------------------------

def _select_rules(rules: Sequence[Rule],
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None) -> list[Rule]:
    """Filter rules by ``--select``/``--ignore`` names.

    Names may be rule family ids (``determinism``) or individual
    finding codes (``DET001``); a code keeps its whole rule active so
    that code-level filtering can happen on the findings afterwards
    (:func:`_finding_passes`).
    """
    known = {rule.id for rule in rules}
    codes = {code: rule.id for rule in rules for code in rule.codes}
    for name in list(select or []) + list(ignore or []):
        if name not in known and name not in codes:
            raise StatanError(
                "unknown rule id or code {!r}; available: {}".format(
                    name, ", ".join(sorted(known))))
    active = list(rules)
    if select:
        wanted = {codes.get(name, name) for name in select}
        active = [rule for rule in active if rule.id in wanted]
    if ignore:
        # Only whole-family ignores disable a rule; code-level ignores
        # leave the rule running and drop its findings later.
        dropped = {name for name in ignore if name in known}
        active = [rule for rule in active if rule.id not in dropped]
    return active


def _finding_passes(finding: Finding,
                    select: Optional[Iterable[str]] = None,
                    ignore: Optional[Iterable[str]] = None) -> bool:
    """Code-level select/ignore filtering on an individual finding."""
    if select:
        names = set(select)
        if finding.rule not in names and finding.code not in names:
            return False
    if ignore:
        names = set(ignore)
        if finding.rule in names or finding.code in names:
            return False
    return True


def check_source(source: str, path: str = "<string>",
                 rules: Optional[Sequence[Rule]] = None,
                 apply_suppressions: bool = True) -> list[Finding]:
    """Check one source string and return its (sorted) findings."""
    if rules is None:
        from repro.statan.rules import default_rules
        rules = default_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) or 1,
            code="STX001", rule="syntax-error", severity=Severity.ERROR,
            message="file does not parse: {}".format(exc.msg))]

    ctx = Context(path, source, tree)
    for rule in rules:
        rule.make_visitor(ctx).visit(tree)

    findings = sorted(ctx.findings,
                      key=lambda f: (f.line, f.col, f.code))
    if apply_suppressions:
        marks = _expand_suppressions(_suppressions(source), tree)
        findings = [finding for finding in findings
                    if not _is_suppressed(finding, marks)]
    return findings


def _iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise StatanError("no such file or directory: {}".format(raw))
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(part.startswith(".") or part == "__pycache__"
                       for part in parts):
                    continue
                yield candidate
        else:
            yield path


def check_paths(paths: Sequence[str],
                rules: Optional[Sequence[Rule]] = None,
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None,
                min_severity: Severity = Severity.INFO,
                program_rules: object = "default",
                baseline: Optional[Iterable[str]] = None) -> Result:
    """Check every ``*.py`` file under ``paths`` and aggregate findings.

    Runs the per-file rules file by file, then the whole-program passes
    (:mod:`repro.statan.program`) over everything that parsed.  Pass
    ``program_rules=None`` to skip the program passes, or a sequence to
    override them.  ``baseline`` is an iterable of fingerprints whose
    findings are hidden (counted in :attr:`Result.baselined`).
    """
    from repro.statan.program import ProgramRule, default_program_rules
    from repro.statan.sarif import fingerprint_findings, split_by_baseline

    if rules is None:
        from repro.statan.rules import default_rules
        rules = default_rules()
    if program_rules == "default":
        program_rules = default_program_rules()
    combined = list(rules) + list(program_rules or ())
    active = _select_rules(combined, select=select, ignore=ignore)
    file_rules = [rule for rule in active
                  if not isinstance(rule, ProgramRule)]
    active_program = [rule for rule in active
                      if isinstance(rule, ProgramRule)]

    result = Result()
    sources: dict[str, str] = {}
    parsed: list[tuple[str, str, ast.AST]] = []
    marks_by_path: dict[str, dict[int, set[str]]] = {}

    def _admit(finding: Finding, marks: dict[int, set[str]]) -> None:
        if _is_suppressed(finding, marks):
            result.suppressed += 1
        elif finding.severity >= min_severity \
                and _finding_passes(finding, select, ignore):
            result.findings.append(finding)

    for path in _iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise StatanError("cannot read {}: {}".format(path, exc))
        name = str(path)
        sources[name] = source
        result.files_checked += 1
        try:
            tree = ast.parse(source, filename=name)
        except SyntaxError as exc:
            _admit(Finding(
                path=name, line=exc.lineno or 1,
                col=(exc.offset or 0) or 1, code="STX001",
                rule="syntax-error", severity=Severity.ERROR,
                message="file does not parse: {}".format(exc.msg)), {})
            continue
        ctx = Context(name, source, tree)
        for rule in file_rules:
            rule.make_visitor(ctx).visit(tree)
        marks = _expand_suppressions(_suppressions(source), tree)
        marks_by_path[name] = marks
        parsed.append((name, source, tree))
        for finding in sorted(ctx.findings,
                              key=lambda f: (f.line, f.col, f.code)):
            _admit(finding, marks)

    if active_program and parsed:
        from repro.statan.program import check_program
        for finding in check_program(parsed, active_program):
            _admit(finding, marks_by_path.get(finding.path, {}))

    result.findings = fingerprint_findings(result.findings, sources)
    if baseline is not None:
        fresh, known = split_by_baseline(result.findings, baseline)
        result.findings = fresh
        result.baselined = len(known)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


# -- reporters ------------------------------------------------------------

def render_text(result: Result) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        "{}:{}:{}: {} [{}] {}".format(
            finding.path, finding.line, finding.col, finding.code,
            finding.severity.label, finding.message)
        for finding in result.findings
    ]
    counts = result.counts()
    summary = ("checked {} file{}: {} error(s), {} warning(s), "
               "{} info, {} suppressed".format(
                   result.files_checked,
                   "" if result.files_checked == 1 else "s",
                   counts["error"], counts["warning"], counts["info"],
                   result.suppressed))
    if result.baselined:
        summary += ", {} baselined".format(result.baselined)
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: Result) -> str:
    """Stable machine-readable report (schema version 2)."""
    payload = {
        "version": 2,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "counts": result.counts(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
