"""Per-function summaries for the whole-program statan passes.

A *summary* is the package-local answer to "what does calling this
function do to state I can see?", computed once per function and then
composed along call edges by :mod:`repro.statan.program` — the same
modular trick summary-based race detectors and lint-at-scale systems
use so the interprocedural passes never re-walk a callee's body per
call site.

Abstract locations are ``(root, attrpath)`` pairs where the root is
``"self"`` or a parameter name: ``self.tokens`` is ``("self",
"tokens")``, ``member.state`` inside ``def probe(self, member)`` is
``("member", "state")``.  Locals are invisible (each simulated process
owns its frame); attributes are the shared state another process can
mutate between two yields.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Location", "FunctionSummary", "summarize",
    "location_of", "reads_in", "writes_of", "param_derived_names",
    "classify_seed", "RNG_PARAM_NAMES", "SEED_PARAM_NAMES",
]

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Parameter names that mean "the caller handed me a generator".
RNG_PARAM_NAMES = {"rng", "generator", "random_state", "rand"}
#: Parameter names that mean "the caller handed me seed material".
SEED_PARAM_NAMES = {"seed", "seeds", "base_seed", "seed_sequence"}

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "appendleft", "extend", "extendleft", "add", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "update", "insert",
    "setdefault", "sort", "reverse", "rotate",
}

#: How many attribute segments a location keeps (``self.tier.queue``).
_MAX_ATTR_DEPTH = 2

Location = tuple[str, str]


def _own_nodes(func: ast.AST):
    """Walk a function body without entering nested functions/lambdas."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTIONS + (ast.Lambda,)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def location_of(node: ast.AST) -> Optional[Location]:
    """``(root, attrpath)`` for an attribute chain, else ``None``.

    Subscripts collapse onto their container (``self.table[k]`` is the
    ``self.table`` location — element-level precision buys nothing for
    a yield-atomicity check, the container is what races).
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        else:
            break
    if not isinstance(node, ast.Name) or not parts:
        return None
    parts.reverse()
    return node.id, ".".join(parts[:_MAX_ATTR_DEPTH])


def reads_in(expr: ast.AST, roots: set[str]) -> set[Location]:
    """Attribute loads in ``expr`` rooted at one of ``roots``."""
    out: set[Location] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            loc = location_of(node)
            if loc is not None and loc[0] in roots:
                out.add(loc)
    return out


def _assign_targets(stmt: ast.AST) -> list[ast.AST]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


def writes_of(node: ast.AST, roots: set[str]) -> set[Location]:
    """Shared locations a single statement/expression writes.

    Covers attribute/subscript assignment targets and in-place
    container mutations (``self.queue.append(x)``).
    """
    out: set[Location] = set()
    for target in _assign_targets(node):
        for sub in ast.walk(target):
            if isinstance(sub, (ast.Attribute, ast.Subscript)):
                loc = location_of(sub)
                if loc is not None and loc[0] in roots:
                    out.add(loc)
    call = node.value if isinstance(node, ast.Expr) else node
    if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute) \
            and call.func.attr in _MUTATOR_METHODS:
        loc = location_of(call.func.value)
        if loc is not None and loc[0] in roots:
            out.add(loc)
    return out


def param_derived_names(func: ast.AST) -> set[str]:
    """Local names whose values derive from the function's parameters.

    A simple fixed point over ``name = <expr>`` assignments: seeds with
    the parameter names, then adds any assigned name whose right-hand
    side mentions a derived name.  Attribute reads *off* a derived name
    count as derived (``config.seed`` is caller-supplied material).
    """
    args = func.args
    derived = {arg.arg for arg in
               args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg is not None:
        derived.add(args.vararg.arg)
    if args.kwarg is not None:
        derived.add(args.kwarg.arg)
    changed = True
    while changed:
        changed = False
        for node in _own_nodes(func):
            if not isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                continue
            value = node.value
            if value is None:
                continue
            if not any(isinstance(sub, ast.Name) and sub.id in derived
                       for sub in ast.walk(value)):
                continue
            for target in _assign_targets(node):
                for element in ast.walk(target):
                    if isinstance(element, ast.Name) \
                            and element.id not in derived:
                        derived.add(element.id)
                        changed = True
    return derived


# -- seed classification ---------------------------------------------------

def _is_rng_construction(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name == "default_rng"


def classify_seed(call: ast.Call, derived: set[str],
                  constants: dict[str, object]
                  ) -> tuple[str, Optional[object]]:
    """Classify a ``default_rng(...)`` call's seed provenance.

    Returns ``(kind, value)`` where kind is one of

    - ``"derived"`` — seed material reaches back to a parameter (or to
      ``self``/another generator): the caller threads it; clean.
    - ``"constant"`` — literals and module-level constants only; the
      stream is pinned regardless of the experiment's seed.  ``value``
      is the resolved seed when it is a single literal/constant.
    - ``"unseeded"`` — no argument at all (OS entropy; DET006 already
      flags this per-file, the program pass only tracks it).
    - ``"opaque"`` — anything else (globals, closures); not flagged.
    """
    seed_nodes: list[ast.AST] = list(call.args)
    for keyword in call.keywords:
        if keyword.arg in (None, "seed"):
            seed_nodes.append(keyword.value)
    if not seed_nodes:
        return "unseeded", None
    constant_only = True
    value: Optional[object] = None
    values: list[object] = []
    for seed in seed_nodes:
        for node in ast.walk(seed):
            if isinstance(node, ast.Attribute):
                # ``self._rng.integers(...)``, ``config.seed``: the
                # seed flows from live state, not a pinned literal.
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and (
                        root.id in derived or root.id == "self"):
                    return "derived", None
                constant_only = False
            elif isinstance(node, ast.Name):
                if node.id in derived or node.id == "self":
                    return "derived", None
                if node.id in constants:
                    values.append(constants[node.id])
                else:
                    constant_only = False
            elif isinstance(node, ast.Constant):
                if isinstance(node.value, (int, float, str)):
                    values.append(node.value)
    if constant_only:
        if len(seed_nodes) == 1 and len(values) == 1:
            value = values[0]
        elif values:
            value = tuple(values)
        return "constant", value
    return "opaque", None


# -- the summary -----------------------------------------------------------

@dataclass
class RngConstruction:
    """One ``default_rng(...)`` site inside a function."""

    node: ast.Call
    kind: str
    value: Optional[object] = None


@dataclass
class FunctionSummary:
    """Everything the program passes need to know about one function."""

    qname: str
    params: tuple[str, ...] = ()
    #: Caller handed us a generator / seed material.
    has_rng_param: bool = False
    has_seed_param: bool = False
    #: ``default_rng`` sites with their provenance classification.
    rng_constructions: list[RngConstruction] = field(default_factory=list)
    #: Function returns a generator it built from these parameters —
    #: the ``default_rng([seed, tag])`` helper shape.
    returns_rng_from: set[str] = field(default_factory=set)
    #: Shared locations touched anywhere in the body.
    shared_reads: set[Location] = field(default_factory=set)
    shared_writes: set[Location] = field(default_factory=set)
    #: param name -> shared locations assigned a value derived from it
    #: (``def _set(self, n): self.pending = n``).
    param_writes: dict[str, set[Location]] = field(default_factory=dict)
    #: Shared locations the return value derives from
    #: (``def _count(self): return len(self.queue)``).
    ret_reads: set[Location] = field(default_factory=set)
    #: Function contains yield points (is a generator).
    is_generator: bool = False
    #: Receivers of ``.acquire()`` / ``.request()`` calls.
    acquires: set[str] = field(default_factory=set)
    #: Function hands an acquired slot/request to its caller.
    returns_acquired: bool = False

    def rng_available(self) -> bool:
        return self.has_rng_param or self.has_seed_param


def _param_annotation_is_generator(arg: ast.arg) -> bool:
    annotation = arg.annotation
    if annotation is None:
        return False
    text = ast.dump(annotation) if not isinstance(annotation, ast.Constant) \
        else str(annotation.value)
    return "Generator" in text


def summarize(func: ast.AST, qname: str = "",
              constants: Optional[dict[str, object]] = None
              ) -> FunctionSummary:
    """Build the :class:`FunctionSummary` for one function node."""
    constants = constants or {}
    args = func.args
    arg_nodes = args.posonlyargs + args.args + args.kwonlyargs
    params = tuple(arg.arg for arg in arg_nodes)
    summary = FunctionSummary(qname=qname, params=params)
    for arg in arg_nodes:
        lowered = arg.arg.lower()
        if lowered in RNG_PARAM_NAMES or _param_annotation_is_generator(arg):
            summary.has_rng_param = True
        if lowered in SEED_PARAM_NAMES:
            summary.has_seed_param = True

    derived = param_derived_names(func)
    roots = set(params) | {"self"}
    #: local name -> the single shared location it was read from (used
    #: for param_writes/ret_reads value flow; multi-source locals keep
    #: the union).
    local_sources: dict[str, set[Location]] = {
        param: {(param, "")} for param in params}

    acquired_names: set[str] = set()
    # Source order matters: ``return Endpoint(self, slot)`` must see the
    # ``slot = pool.acquire()`` that precedes it, and local value flow
    # is a single forward pass.
    ordered = sorted(_own_nodes(func),
                     key=lambda n: (getattr(n, "lineno", 0),
                                    getattr(n, "col_offset", 0)))
    for node in ordered:
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            summary.is_generator = True
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            summary.shared_writes |= writes_of(node, roots)
            if node.value is not None:
                summary.shared_reads |= reads_in(node.value, roots)
                sources = reads_in(node.value, roots)
                value_names = {sub.id for sub in ast.walk(node.value)
                               if isinstance(sub, ast.Name)}
                for name in value_names & set(local_sources):
                    sources |= local_sources[name]
                for target in _assign_targets(node):
                    if isinstance(target, ast.Name):
                        local_sources.setdefault(
                            target.id, set()).update(sources)
                    else:
                        loc = location_of(target)
                        if loc is not None and loc[0] in roots:
                            for source_root, _ in sources:
                                if source_root in params:
                                    summary.param_writes.setdefault(
                                        source_root, set()).add(loc)
                # acquire()/request() results bound to a local
                if isinstance(node.value, ast.Call) \
                        and isinstance(node.value.func, ast.Attribute) \
                        and node.value.func.attr in (
                            "acquire", "request", "try_acquire"):
                    for target in _assign_targets(node):
                        if isinstance(target, ast.Name):
                            acquired_names.add(target.id)
        elif isinstance(node, ast.Expr):
            summary.shared_writes |= writes_of(node, roots)
            summary.shared_reads |= reads_in(node, roots)
        elif isinstance(node, (ast.If, ast.While)):
            summary.shared_reads |= reads_in(node.test, roots)
        elif isinstance(node, ast.For):
            summary.shared_reads |= reads_in(node.iter, roots)
        elif isinstance(node, ast.Return) and node.value is not None:
            summary.ret_reads |= reads_in(node.value, roots)
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    summary.ret_reads |= local_sources.get(sub.id, set())
                    if sub.id in acquired_names:
                        summary.returns_acquired = True
            if isinstance(node.value, ast.Call):
                if isinstance(node.value.func, ast.Attribute) \
                        and node.value.func.attr in (
                            "acquire", "request", "try_acquire"):
                    summary.returns_acquired = True
                # ``return Endpoint(self, slot)``: the wrapper carries
                # the acquired slot out.
                for arg in ast.walk(node.value):
                    if isinstance(arg, ast.Name) \
                            and arg.id in acquired_names:
                        summary.returns_acquired = True
            if isinstance(node.value, ast.Call) \
                    and _is_rng_construction(node.value):
                kind, _ = classify_seed(node.value, derived, constants)
                if kind == "derived":
                    summary.returns_rng_from = {
                        name for name in params
                        if any(isinstance(sub, ast.Name)
                               and sub.id in derived and sub.id == name
                               for sub in ast.walk(node.value))}
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "acquire":
                receiver = location_of(node.func.value)
                dotted = ".".join(part for part in (
                    receiver if receiver else ()) if part)
                summary.acquires.add(dotted or "<expr>")
            if _is_rng_construction(node):
                kind, value = classify_seed(node, derived, constants)
                summary.rng_constructions.append(
                    RngConstruction(node=node, kind=kind, value=value))
    return summary
