"""SARIF 2.1.0 output and fingerprinted baselines for statan.

Two pieces of CI plumbing live here:

Fingerprints
    Every finding gets a stable fingerprint: the SHA-1 of
    ``code|path|stripped source line|occurrence index``.  Hashing the
    *content* of the flagged line rather than its number keeps the
    fingerprint stable when unrelated edits shift the file, while the
    occurrence index disambiguates identical lines (two ``x += 1`` in
    one file).

Baselines
    ``statan-baseline.json`` records the fingerprints of known,
    reviewed findings.  ``--baseline`` suppresses exactly those — the
    run stays green on the accepted debt and fails on anything new, so
    a stricter pass can gate CI the day it lands instead of after a
    big-bang cleanup.  ``--write-baseline`` refreshes the file after a
    deliberate review.

SARIF
    :func:`render_sarif` emits a single-run SARIF 2.1.0 log with one
    ``reportingDescriptor`` per finding code and the fingerprint under
    ``partialFingerprints`` so GitHub code scanning tracks findings
    across commits.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.statan.engine import Finding

__all__ = [
    "fingerprint_findings", "load_baseline", "write_baseline",
    "render_baseline", "split_by_baseline", "render_sarif",
    "SARIF_SCHEMA", "SARIF_VERSION", "BASELINE_VERSION",
    "FINGERPRINT_KEY",
]

SARIF_SCHEMA = ("https://json.schemastore.org/sarif-2.1.0.json")
SARIF_VERSION = "2.1.0"
BASELINE_VERSION = 1
#: partialFingerprints key; bump the suffix if the recipe ever changes.
FINGERPRINT_KEY = "statanFingerprint/v1"

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _normalize_path(path: str) -> str:
    return path.replace("\\", "/")


def _fingerprint_path(path: str) -> str:
    """Checkout-independent form of a path for hashing.

    ``/home/ci/repo/src/repro/x.py`` and ``src/repro/x.py`` must
    produce the same fingerprint, so everything before the last
    ``src/`` segment is dropped.
    """
    normalized = _normalize_path(path).lstrip("./")
    index = normalized.rfind("/src/")
    if index >= 0:
        return normalized[index + 1:]
    return normalized


def compute_fingerprint(code: str, path: str, line_text: str,
                        occurrence: int) -> str:
    """SHA-1 over code, path, stripped line content and occurrence."""
    payload = "|".join(
        (code, _fingerprint_path(path), line_text.strip(),
         str(occurrence)))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def fingerprint_findings(findings: Sequence["Finding"],
                         sources: dict[str, str]) -> list["Finding"]:
    """Return findings with :attr:`Finding.fingerprint` filled in.

    ``sources`` maps path -> file content.  Findings for paths without
    source (should not happen in practice) hash an empty line.
    """
    lines_by_path: dict[str, list[str]] = {}
    for path, source in sources.items():
        lines_by_path[_normalize_path(path)] = source.splitlines()
    seen: dict[tuple[str, str, str], int] = {}
    out: list["Finding"] = []
    for finding in sorted(findings,
                          key=lambda f: (f.path, f.line, f.col, f.code)):
        path = _normalize_path(finding.path)
        lines = lines_by_path.get(path, [])
        line_text = lines[finding.line - 1] \
            if 0 < finding.line <= len(lines) else ""
        key = (finding.code, path, line_text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(finding.with_fingerprint(compute_fingerprint(
            finding.code, path, line_text, occurrence)))
    return out


# -- baseline --------------------------------------------------------------

def render_baseline(findings: Sequence["Finding"]) -> str:
    """Serialize findings into baseline JSON (fingerprints + context)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": finding.fingerprint,
                "code": finding.code,
                "path": _normalize_path(finding.path),
                "message": finding.message,
            }
            for finding in sorted(
                findings, key=lambda f: (f.path, f.line, f.col, f.code))
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str, findings: Sequence["Finding"]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(findings))


def load_baseline(path: str) -> set[str]:
    """Fingerprint set from a baseline file.

    Raises ``ValueError`` on malformed files so the CLI can exit 2
    (usage error) rather than silently gating against nothing.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(
            "baseline {}: expected an object with 'findings'".format(path))
    fingerprints: set[str] = set()
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(
                "baseline {}: every finding needs a "
                "'fingerprint'".format(path))
        fingerprints.add(entry["fingerprint"])
    return fingerprints


def split_by_baseline(findings: Sequence["Finding"],
                      fingerprints: Iterable[str]
                      ) -> tuple[list["Finding"], list["Finding"]]:
    """``(new, baselined)`` partition of findings by fingerprint."""
    known = set(fingerprints)
    new: list["Finding"] = []
    baselined: list["Finding"] = []
    for finding in findings:
        if finding.fingerprint and finding.fingerprint in known:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined


# -- SARIF -----------------------------------------------------------------

def _rule_index(findings: Sequence["Finding"]
                ) -> list[tuple[str, "Finding"]]:
    by_code: dict[str, "Finding"] = {}
    for finding in findings:
        by_code.setdefault(finding.code, finding)
    return sorted(by_code.items())


def render_sarif(findings: Sequence["Finding"],
                 tool_version: Optional[str] = None) -> str:
    """Single-run SARIF 2.1.0 log for the given findings."""
    rules = []
    code_to_index: dict[str, int] = {}
    for code, exemplar in _rule_index(findings):
        code_to_index[code] = len(rules)
        rules.append({
            "id": code,
            "name": exemplar.rule,
            "shortDescription": {"text": "{} ({})".format(
                code, exemplar.rule)},
            "defaultConfiguration": {
                "level": _LEVELS.get(exemplar.severity.label, "warning"),
            },
        })
    results = []
    for finding in sorted(findings,
                          key=lambda f: (f.path, f.line, f.col, f.code)):
        result = {
            "ruleId": finding.code,
            "ruleIndex": code_to_index[finding.code],
            "level": _LEVELS.get(finding.severity.label, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _normalize_path(finding.path),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        }
        if finding.fingerprint:
            result["partialFingerprints"] = {
                FINGERPRINT_KEY: finding.fingerprint,
            }
        results.append(result)
    driver = {
        "name": "statan",
        "informationUri":
            "https://example.invalid/repro-lb/statan",
        "rules": rules,
    }
    if tool_version:
        driver["version"] = tool_version
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "results": results,
            "columnKind": "unicodeCodePoints",
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
