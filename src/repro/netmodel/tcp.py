"""TCP-style drop-and-retransmit behaviour.

The paper traces VLRT requests to one mechanism: a millibottleneck fills
queues upstream until the web tier's accept queue overflows, arriving
packets are dropped, and the client's TCP stack retransmits them on its
retransmission timer.  The retransmitted request then completes quickly
— but its end-to-end response time includes one or more full timer
periods, producing the distinct clusters near 1 s, 2 s and 3 s in
Fig. 4.

:class:`RetransmissionPolicy` captures the timer; :class:`TcpSender`
drives send-with-retransmit against a listen socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.sockets import ListenSocket
    from repro.sim.core import Environment


@dataclass(frozen=True)
class RetransmissionPolicy:
    """Client retransmission timer.

    Parameters
    ----------
    initial_rto:
        Seconds from a (silently dropped) send to its first retransmit.
    backoff:
        Multiplier applied to the timer after every unanswered attempt.
        ``1.0`` (the default) retransmits every ``initial_rto`` seconds,
        which yields completion clusters at ``initial_rto`` multiples —
        the paper's 1 s / 2 s / 3 s clusters.
    max_retries:
        Attempts after the first send before the request is abandoned.
    """

    initial_rto: float = 1.0
    backoff: float = 1.0
    max_retries: int = 6

    def __post_init__(self) -> None:
        if self.initial_rto <= 0:
            raise ConfigurationError("initial_rto must be positive")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1.0")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")

    def rto_after(self, attempt: int) -> float:
        """Timer value after ``attempt`` unanswered sends (0-based)."""
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0")
        return self.initial_rto * (self.backoff ** attempt)


class GaveUp(Exception):
    """Raised by :meth:`TcpSender.send` when every retransmit was dropped."""


class TcpSender:
    """Send-with-retransmit against listen sockets, with drop counters."""

    def __init__(self, env: "Environment",
                 policy: RetransmissionPolicy | None = None) -> None:
        self.env = env
        self.policy = policy or RetransmissionPolicy()
        #: Total packets handed to sockets (including retransmits).
        self.packets_sent = 0
        #: Packets dropped at the receiving socket.
        self.packets_dropped = 0
        #: Requests abandoned after ``max_retries``.
        self.gave_up = 0

    def send(self, socket: "ListenSocket", item: object):
        """Process generator: deliver ``item``, retransmitting on drops.

        Returns the number of retransmissions needed (0 when the first
        send is accepted).  Raises :class:`GaveUp` when the policy's
        retry budget is exhausted.
        """
        tracer = self.env.tracer
        request_id = (getattr(item, "request_id", None)
                      if tracer is not None else None)
        for attempt in range(self.policy.max_retries + 1):
            self.packets_sent += 1
            impairment = socket.impairment
            if impairment is None:
                accepted = socket.offer(item)
            elif impairment.drops():
                # Lost in the network: same client-visible outcome as an
                # accept-queue drop — silence, then the RTO fires.
                accepted = False
            else:
                if impairment.extra_latency > 0.0:
                    yield self.env.timeout(impairment.extra_latency)
                accepted = socket.offer(item)
            if accepted:
                if request_id is not None:
                    # The packet now sits in the kernel accept queue;
                    # the web-tier worker that dequeues it closes this.
                    tracer.start_named(request_id, "apache.queue_wait",
                                       socket=socket.name)
                return attempt  # statan: ignore[PROC003] -- process value
            self.packets_dropped += 1
            if attempt == self.policy.max_retries:
                break
            rto = self.policy.rto_after(attempt)
            if request_id is None:
                yield self.env.timeout(rto)
            else:
                span = tracer.start(request_id, "tcp.retransmit_wait",
                                    attempt=attempt + 1, rto=rto)
                try:
                    yield self.env.timeout(rto)
                finally:
                    # Closed here on the normal path; on an interrupt
                    # (a retrying client's attempt deadline) the span
                    # still ends at the moment the wait was cut short.
                    tracer.finish(span)
        self.gave_up += 1
        raise GaveUp("request dropped {} times".format(
            self.policy.max_retries + 1))
