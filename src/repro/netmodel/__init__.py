"""Network substrate: accept queues, links, and TCP retransmission.

The piece of networking that matters to this paper is small but
precise: finite accept queues drop packets when they overflow, and
clients retransmit dropped packets on a timer — turning a
150-millisecond millibottleneck into multi-second response times.
"""

from repro.netmodel.sockets import Link, ListenSocket
from repro.netmodel.tcp import GaveUp, RetransmissionPolicy, TcpSender

__all__ = [
    "ListenSocket",
    "Link",
    "TcpSender",
    "RetransmissionPolicy",
    "GaveUp",
]
