"""Listen sockets: finite accept queues that drop on overflow.

A :class:`ListenSocket` is the kernel-side accept queue of a server.
Crucially, the kernel keeps accepting into this queue even while the
*application* is frozen by a millibottleneck — which is why a stalled
Tomcat silently absorbs requests instead of refusing them, and why the
web tier (whose own queue eventually overflows) is where packets die.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.metrics.timeseries import TimeSeries
from repro.sim.queues import DropQueue

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.sim.core import Environment


class NetworkImpairment:
    """A lossy / slow network path in front of a listen socket.

    Installed on :attr:`ListenSocket.impairment` by the fault injector
    for the duration of a network fault window and consulted by
    :class:`~repro.netmodel.tcp.TcpSender` before each send: a drawn
    drop makes the packet vanish in the network (the client's TCP
    stack retransmits after its RTO, exactly as with an accept-queue
    overflow), and ``extra_latency`` delays surviving packets.

    Draw order is event order, which is deterministic for a fixed
    seed, so impaired runs stay reproducible.
    """

    __slots__ = ("loss", "extra_latency", "_rng", "packets_lost")

    def __init__(self, loss: float, extra_latency: float,
                 rng: "np.random.Generator") -> None:
        self.loss = loss
        self.extra_latency = extra_latency
        self._rng = rng
        #: Packets this impairment made vanish.
        self.packets_lost = 0

    def drops(self) -> bool:
        """Whether the next packet is lost in the network."""
        if self.loss > 0.0 and float(self._rng.random()) < self.loss:
            self.packets_lost += 1
            return True
        return False


class ListenSocket:
    """Named accept queue with overflow drops and a length timeline."""

    def __init__(self, env: "Environment", backlog: int,
                 name: str = "socket",
                 on_drop: Optional[Callable[[object], None]] = None) -> None:
        self.env = env
        self.name = name
        self._user_on_drop = on_drop
        self._queue = DropQueue(env, capacity=backlog, on_drop=self._dropped)
        #: (time, item) drop log for analysis.
        self.drop_log: list[tuple[float, object]] = []
        #: Optional network fault in front of this socket, installed by
        #: the fault injector; ``None`` (the default) costs nothing.
        self.impairment: Optional[NetworkImpairment] = None

    def _dropped(self, item: object) -> None:
        self.drop_log.append((self.env.now, item))
        if self._user_on_drop is not None:
            self._user_on_drop(item)

    # -- data path ---------------------------------------------------------
    def offer(self, item: object) -> bool:
        """Non-blocking enqueue; ``False`` means the packet was dropped."""
        return self._queue.offer(item)

    def accept(self):
        """Event that triggers with the oldest queued item."""
        return self._queue.get()

    # -- observability -------------------------------------------------------
    @property
    def backlog(self) -> int:
        return self._queue.capacity

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def dropped(self) -> int:
        return self._queue.dropped

    @property
    def accepted(self) -> int:
        return self._queue.accepted

    @property
    def peak_length(self) -> int:
        return self._queue.peak_length

    def drops_between(self, start: float, end: float) -> int:
        """Packets dropped with ``start <= time < end``."""
        return sum(1 for time, _ in self.drop_log if start <= time < end)

    def __repr__(self) -> str:
        return "<ListenSocket {} {}/{} dropped={}>".format(
            self.name, self.queue_length, self.backlog, self.dropped)


class Link:
    """A network hop with fixed one-way latency.

    The paper's testbed uses a 1 Gbps LAN; propagation is microseconds
    and never the bottleneck, but modelling it keeps event ordering
    honest (a reply cannot arrive in the same instant it was sent).
    """

    def __init__(self, env: "Environment", latency: float = 0.0002,
                 name: str = "link") -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.env = env
        self.latency = latency
        self.name = name
        self.messages = 0

    def delay(self):
        """Event representing one traversal of the link."""
        self.messages += 1
        return self.env.timeout(self.latency)

    def __repr__(self) -> str:
        return "<Link {} {:.3f} ms>".format(self.name, self.latency * 1000)
