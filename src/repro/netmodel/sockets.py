"""Listen sockets: finite accept queues that drop on overflow.

A :class:`ListenSocket` is the kernel-side accept queue of a server.
Crucially, the kernel keeps accepting into this queue even while the
*application* is frozen by a millibottleneck — which is why a stalled
Tomcat silently absorbs requests instead of refusing them, and why the
web tier (whose own queue eventually overflows) is where packets die.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.metrics.timeseries import TimeSeries
from repro.sim.queues import DropQueue

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.sim.core import Environment


class NetworkImpairment:
    """A lossy / slow network path in front of a listen socket.

    Installed on :attr:`ListenSocket.impairment` by the fault injector
    for the duration of a network fault window and consulted by
    :class:`~repro.netmodel.tcp.TcpSender` before each send: a drawn
    drop makes the packet vanish in the network (the client's TCP
    stack retransmits after its RTO, exactly as with an accept-queue
    overflow), and ``extra_latency`` delays surviving packets.

    Draw order is event order, which is deterministic for a fixed
    seed, so impaired runs stay reproducible.
    """

    __slots__ = ("loss", "extra_latency", "_rng", "packets_lost")

    def __init__(self, loss: float, extra_latency: float,
                 rng: "np.random.Generator") -> None:
        self.loss = loss
        self.extra_latency = extra_latency
        self._rng = rng
        #: Packets this impairment made vanish.
        self.packets_lost = 0

    def drops(self) -> bool:
        """Whether the next packet is lost in the network."""
        if self.loss > 0.0 and float(self._rng.random()) < self.loss:
            self.packets_lost += 1
            return True
        return False


class ListenSocket:
    """Named accept queue with overflow drops and a length timeline."""

    def __init__(self, env: "Environment", backlog: int,
                 name: str = "socket",
                 on_drop: Optional[Callable[[object], None]] = None) -> None:
        self.env = env
        self.name = name
        self._user_on_drop = on_drop
        self._queue = DropQueue(env, capacity=backlog, on_drop=self._dropped)
        #: (time, item) drop log for analysis.
        self.drop_log: list[tuple[float, object]] = []
        #: Optional network fault in front of this socket, installed by
        #: the fault injector; ``None`` (the default) costs nothing.
        self.impairment: Optional[NetworkImpairment] = None
        #: While True the kernel refuses every packet (host down, not
        #: just application frozen) — set by zone-outage faults on
        #: frontends; the client's TCP stack sees the same silence as
        #: an accept-queue overflow and retransmits on its RTO.
        self.refusing = False
        #: Packets refused while the host was down.
        self.refused = 0

    def _dropped(self, item: object) -> None:
        self.drop_log.append((self.env.now, item))
        if self._user_on_drop is not None:
            self._user_on_drop(item)

    # -- data path ---------------------------------------------------------
    def offer(self, item: object) -> bool:
        """Non-blocking enqueue; ``False`` means the packet was dropped."""
        if self.refusing:
            self.refused += 1
            self._dropped(item)
            return False
        return self._queue.offer(item)

    def accept(self):
        """Event that triggers with the oldest queued item."""
        return self._queue.get()

    # -- observability -------------------------------------------------------
    @property
    def backlog(self) -> int:
        return self._queue.capacity

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def dropped(self) -> int:
        return self._queue.dropped + self.refused

    @property
    def accepted(self) -> int:
        return self._queue.accepted

    @property
    def peak_length(self) -> int:
        return self._queue.peak_length

    def drops_between(self, start: float, end: float) -> int:
        """Packets dropped with ``start <= time < end``."""
        return sum(1 for time, _ in self.drop_log if start <= time < end)

    def __repr__(self) -> str:
        return "<ListenSocket {} {}/{} dropped={}>".format(
            self.name, self.queue_length, self.backlog, self.dropped)


class LinkProfile:
    """Behaviour of one network path: latency distribution, loss, bandwidth.

    The implicit intra-host link of earlier revisions is the degenerate
    profile (sub-millisecond latency, no jitter, no loss, no bandwidth
    cap).  A WAN profile makes a cross-zone hop pay real RTT plus
    jittered propagation, loses frames with probability ``loss`` (each
    loss costs one link-layer retransmission clocked by the profile's
    own ``rto``), and charges serialization delay ``frame_bytes /
    bandwidth`` when a bandwidth cap is set.
    """

    __slots__ = ("latency", "jitter", "loss", "bandwidth", "rto",
                 "frame_bytes", "name")

    #: Link-layer retransmissions before the frame is delivered anyway
    #: (a real path is lossy, not a void; this also bounds event count).
    MAX_RETRANSMITS = 8

    def __init__(self, latency: float, jitter: float = 0.0,
                 loss: float = 0.0, bandwidth: Optional[float] = None,
                 rto: float = 0.2, frame_bytes: float = 8192.0,
                 name: str = "wan") -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if rto <= 0:
            raise ValueError("rto must be positive")
        self.latency = latency
        self.jitter = jitter
        self.loss = loss
        self.bandwidth = bandwidth
        self.rto = rto
        self.frame_bytes = frame_bytes
        self.name = name

    def one_way(self, rng: "np.random.Generator | None") -> float:
        """One jittered traversal time (no loss applied)."""
        delay = self.latency
        if self.jitter > 0.0 and rng is not None:
            delay += self.jitter * float(rng.random())
        if self.bandwidth is not None:
            delay += self.frame_bytes / self.bandwidth
        return delay

    def __repr__(self) -> str:
        return "<LinkProfile {} {:.1f} ms loss={:.2%}>".format(
            self.name, self.latency * 1000, self.loss)


class Link:
    """A network hop with fixed one-way latency.

    The paper's testbed uses a 1 Gbps LAN; propagation is microseconds
    and never the bottleneck, but modelling it keeps event ordering
    honest (a reply cannot arrive in the same instant it was sent).

    With a :class:`LinkProfile` attached (``profile=``), the link is a
    WAN hop: :meth:`transit` pays jittered RTT, serialization delay and
    loss-driven retransmissions.  ``profile=None`` (every pre-existing
    call site) keeps the exact legacy :meth:`delay` behaviour — no
    extra events, no RNG draws — so zone-free golden traces are
    byte-identical.
    """

    def __init__(self, env: "Environment", latency: float = 0.0002,
                 name: str = "link",
                 profile: Optional[LinkProfile] = None,
                 rng: "np.random.Generator | None" = None,
                 zone_pair: Optional[tuple[str, str]] = None) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.env = env
        self.latency = latency
        self.name = name
        self.messages = 0
        #: WAN behaviour; ``None`` = intra-zone (legacy fixed latency).
        self.profile = profile
        #: Seeded per-link stream for jitter/loss draws; only consulted
        #: when a profile is attached.
        self.rng = rng
        #: ``(zone_a, zone_b)`` for cross-zone links; lets the fault
        #: injector find every link on a degraded zone pair.
        self.zone_pair = zone_pair
        #: Frames lost on this link (each cost one profile-RTO wait).
        self.wan_retransmits = 0

    def delay(self):
        """Event representing one traversal of the link."""
        self.messages += 1
        return self.env.timeout(self.latency)

    def transit(self, item: object = None):
        """Process generator: one traversal under the attached profile.

        Falls back to a bare :meth:`delay` when no profile is set, so
        call sites may use ``yield from link.transit(req)`` uniformly.
        Lost frames wait out the *profile's* RTO (link-layer clock,
        distinct from the client's 1 s TCP RTO) and retransmit; the
        wait is traced as ``tcp.retransmit_wait`` nested inside a
        ``wan.transit`` span so the critical-path explainer can split
        WAN propagation from loss-induced stalls.
        """
        profile = self.profile
        if profile is None:
            yield self.delay()
            return
        env = self.env
        tracer = env.tracer
        request_id = (getattr(item, "request_id", None)
                      if tracer is not None else None)
        span = None
        if request_id is not None:
            span = tracer.start(request_id, "wan.transit", link=self.name)
        try:
            rng = self.rng
            for attempt in range(profile.MAX_RETRANSMITS + 1):
                self.messages += 1
                yield env.timeout(profile.one_way(rng))
                if (profile.loss <= 0.0 or rng is None
                        or attempt == profile.MAX_RETRANSMITS
                        or float(rng.random()) >= profile.loss):
                    return
                self.wan_retransmits += 1
                wait = profile.rto
                if request_id is None:
                    yield env.timeout(wait)
                else:
                    rspan = tracer.start(request_id, "tcp.retransmit_wait",
                                         attempt=attempt + 1, rto=wait,
                                         link=self.name)
                    try:
                        yield env.timeout(wait)
                    finally:
                        tracer.finish(rspan)
        finally:
            if span is not None:
                tracer.finish(span)

    def __repr__(self) -> str:
        return "<Link {} {:.3f} ms>".format(self.name, self.latency * 1000)
