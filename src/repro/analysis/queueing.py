"""Queue-length analysis: peaks, tiers, and cross-tier comparison.

The paper's §III-B methodology: "We use queue length graph to determine
if there are millibottlenecks: large spikes in the graph represent an
abnormally large number of queued requests."  This module finds those
spikes and relates them across tiers (the per-server queue analysis
that attributes a web-tier peak to a push-back wave from the app tier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries


@dataclass(frozen=True)
class QueuePeak:
    """One contiguous interval where a queue exceeded the threshold."""

    server: str
    started_at: float
    ended_at: float
    peak_value: float
    peak_at: float

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    def overlaps(self, other: "QueuePeak", slack: float = 0.0) -> bool:
        """Whether two peaks coincide in time (within ``slack`` seconds)."""
        return (self.started_at - slack < other.ended_at
                and other.started_at - slack < self.ended_at)


def find_peaks(series: TimeSeries, threshold: float,
               server: str = "") -> list[QueuePeak]:
    """Contiguous intervals where the series is strictly above threshold.

    ``threshold`` should sit well above the normal operating level —
    a natural choice is a multiple of the series median.
    """
    if threshold < 0:
        raise AnalysisError("threshold must be >= 0")
    name = server or series.name
    peaks: list[QueuePeak] = []
    start = None
    peak_value = 0.0
    peak_at = 0.0
    previous_time = None
    for time, value in series:
        if value > threshold:
            if start is None:
                start = time
                peak_value = value
                peak_at = time
            elif value > peak_value:
                peak_value = value
                peak_at = time
        elif start is not None:
            peaks.append(QueuePeak(name, start, time, peak_value, peak_at))
            start = None
        previous_time = time
    if start is not None:
        end = previous_time if previous_time is not None else start
        peaks.append(QueuePeak(name, start, end, peak_value, peak_at))
    return peaks


def adaptive_threshold(series: TimeSeries, multiplier: float = 4.0,
                       floor: float = 5.0) -> float:
    """A spike threshold: ``max(floor, multiplier * mean)``.

    The mean of a queue-length series is dominated by normal operation
    (spikes are rare by definition), so a small multiple of it cleanly
    separates millibottleneck spikes from noise.
    """
    if not len(series):
        raise AnalysisError("empty series")
    return max(floor, multiplier * series.mean())


def tier_series(queue_series: dict[str, TimeSeries],
                prefix: str) -> TimeSeries:
    """Sum the queue series of every server whose name starts with
    ``prefix`` — the per-tier queue plots of Figs. 2(b), 8 and 12."""
    members = [series for name, series in queue_series.items()
               if name.startswith(prefix)]
    if not members:
        raise AnalysisError("no servers with prefix " + prefix)
    length = min(len(series) for series in members)
    out = TimeSeries(prefix + "-tier")
    for i in range(length):
        out.append(members[0].times[i],
                   sum(series.values[i] for series in members))
    return out


def coinciding_peaks(upstream: Sequence[QueuePeak],
                     downstream: Sequence[QueuePeak],
                     slack: float = 0.1) -> list[tuple[QueuePeak, QueuePeak]]:
    """Pairs of overlapping (upstream, downstream) peaks.

    An Apache peak that coincides with a Tomcat peak is the signature
    of queue amplification / push-back (§III-B); an Apache peak with no
    downstream partner points at a local millibottleneck instead.
    """
    pairs = []
    for up in upstream:
        for down in downstream:
            if up.overlaps(down, slack):
                pairs.append((up, down))
    return pairs
