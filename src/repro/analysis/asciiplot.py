"""Terminal rendering of time series and histograms.

The example scripts print the paper's figures as ASCII timelines —
no plotting dependency, inspectable in any terminal or CI log.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], maximum: float | None = None) -> str:
    """One-line bar chart of ``values``."""
    values = list(values)
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _BARS[0] * len(values)
    out = []
    for value in values:
        level = int(round((len(_BARS) - 1) * min(value, top) / top))
        out.append(_BARS[level])
    return "".join(out)


def timeline(series: TimeSeries, width: int = 100,
             label: str | None = None, unit: str = "") -> str:
    """Render a series as a labelled sparkline, resampled to ``width``."""
    if width < 10:
        raise AnalysisError("width must be >= 10")
    if not len(series):
        return "{}: (empty)".format(label or series.name)
    times, values = series.times, series.values
    span = times[-1] - times[0]
    if span <= 0 or len(series) <= width:
        sampled = values
    else:
        window = span / width
        sampled = []
        edge = times[0] + window
        bucket: list[float] = []
        for time, value in series:
            while time >= edge and bucket:
                sampled.append(max(bucket))
                bucket = []
                edge += window
            bucket.append(value)
        if bucket:
            sampled.append(max(bucket))
    name = label or series.name
    return "{:<16s} |{}| max={:.3g}{}".format(
        name, sparkline(sampled), max(values), unit)


def histogram(rows: Sequence[tuple[float, float, int]],
              width: int = 50) -> str:
    """Render (low, high, count) bucket rows as horizontal bars."""
    if not rows:
        return "(empty histogram)"
    top = max(count for _, _, count in rows)
    lines = []
    for low, high, count in rows:
        if count == 0:
            continue
        bar = "#" * max(1, int(width * count / top)) if top else ""
        lines.append("{:>9.3f}s - {:>8.3f}s | {:<{}s} {}".format(
            low, high, bar, width, count))
    return "\n".join(lines) if lines else "(all buckets empty)"


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError("row width does not match headers")
        for column, cell in zip(columns, row):
            column.append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    def render(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    lines = [render([column[0] for column in columns])]
    lines.append("  ".join("-" * width for width in widths))
    for i in range(1, len(columns[0])):
        lines.append(render([column[i] for column in columns]))
    return "\n".join(lines)
