"""Report builders: Table I, paper-vs-measured comparisons, summaries.

Every builder duck-types its inputs on the shared reporting surface
(``config``, ``stats()``, ``table1_row()``), so it accepts full
:class:`~repro.cluster.runner.ExperimentResult` objects from serial
runs and :class:`~repro.parallel.ExperimentSummary` objects from
process-pool fan-outs interchangeably.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.asciiplot import table
from repro.cluster.runner import ExperimentResult
from repro.errors import AnalysisError

#: The paper's Table I, for side-by-side comparison.  Values are
#: (avg response time ms, %VLRT, %normal).
PAPER_TABLE1: dict[str, tuple[float, float, float]] = {
    "original_total_request": (41.00, 5.33, 88.85),
    "original_total_traffic": (55.50, 6.89, 85.55),
    "current_load": (3.62, 0.21, 96.70),
    "total_request_modified": (4.87, 0.55, 95.82),
    "total_traffic_modified": (5.87, 0.76, 93.93),
    "current_load_modified": (3.60, 0.20, 96.67),
}


def table1(results: Sequence[ExperimentResult]) -> str:
    """Render measured results in the paper's Table I format."""
    if not results:
        raise AnalysisError("no results to report")
    headers = ["Policy", "# Total Requests", "Avg RT (ms)",
               "% VLRT (>1000 ms)", "% Normal (<10 ms)"]
    rows = []
    for result in results:
        row = result.table1_row()
        rows.append([
            row["policy"],
            row["total_requests"],
            "{:.2f}".format(row["avg_response_time_ms"]),
            "{:.2f}%".format(row["vlrt_pct"]),
            "{:.2f}%".format(row["normal_pct"]),
        ])
    return table(headers, rows)


def table1_with_paper(results: Sequence[ExperimentResult]) -> str:
    """Measured vs paper values, one row per bundle."""
    headers = ["Policy", "Avg RT ms (ours)", "Avg RT ms (paper)",
               "%VLRT (ours)", "%VLRT (paper)"]
    rows = []
    for result in results:
        key = result.config.bundle_key
        stats = result.stats()
        paper = PAPER_TABLE1.get(key)
        rows.append([
            key,
            "{:.2f}".format(stats.mean_ms),
            "{:.2f}".format(paper[0]) if paper else "-",
            "{:.2f}%".format(100 * stats.vlrt_fraction),
            "{:.2f}%".format(paper[1]) if paper else "-",
        ])
    return table(headers, rows)


def rematch_table(rows: Sequence[dict]) -> str:
    """Render the modern-policy rematch grid (``table1 --policies``).

    One row per (bundle, fault) cell; ``probes/s`` is the probe-message
    overhead a probing policy pays for its ranking, and ``sticky``
    counts affinity violations — both zero for classic bundles, so the
    columns double as a no-hidden-traffic check.
    """
    if not rows:
        raise AnalysisError("no rematch cells to report")
    headers = ["Bundle", "Fault", "%VLRT", "Avail%", "Goodput/s",
               "Probes/s", "Sticky", "Reqs", "Drops", "503s"]
    body = []
    for row in rows:
        body.append([
            row["bundle"],
            row["fault"],
            "{:.3f}".format(row["vlrt_pct"]),
            "{:.2f}".format(100.0 * row["availability"]),
            "{:.1f}".format(row["goodput"]),
            "{:.1f}".format(row["probes_per_s"]),
            row["sticky_violations"],
            row["requests"],
            row["drops"],
            row["errors_503"],
        ])
    return table(headers, body)


def improvement_factors(results: Sequence[ExperimentResult],
                        baseline_key: str = "original_total_request"
                        ) -> dict[str, float]:
    """Average-RT improvement of each run relative to the baseline run.

    The paper's headline: current_load improves on total_request by
    ~12x.  Factors > 1 mean faster than the baseline.
    """
    by_key = {result.config.bundle_key: result for result in results}
    if baseline_key not in by_key:
        raise AnalysisError("baseline {} not among results".format(
            baseline_key))
    baseline = by_key[baseline_key].stats().mean
    return {
        key: baseline / result.stats().mean
        for key, result in by_key.items()
    }


def shape_check(results: Sequence[ExperimentResult]) -> dict[str, bool]:
    """The qualitative claims of §VI, each as a boolean.

    * remedies beat originals on average RT and on %VLRT;
    * total_traffic is no better than total_request (it was worse in
      the paper);
    * combining both remedies adds no further improvement (within 2x
      of the best single remedy).
    """
    by_key = {result.config.bundle_key: result.stats() for result in results}
    required = {"original_total_request", "original_total_traffic",
                "current_load", "total_request_modified",
                "current_load_modified"}
    missing = required - set(by_key)
    if missing:
        raise AnalysisError("missing runs: " + ", ".join(sorted(missing)))
    originals = [by_key["original_total_request"],
                 by_key["original_total_traffic"]]
    remedies = [by_key["current_load"], by_key["total_request_modified"],
                by_key["current_load_modified"]]
    worst_remedy_rt = max(stats.mean for stats in remedies)
    best_original_rt = min(stats.mean for stats in originals)
    worst_remedy_vlrt = max(stats.vlrt_fraction for stats in remedies)
    best_original_vlrt = min(stats.vlrt_fraction for stats in originals)
    combined = by_key["current_load_modified"].mean
    best_single = min(by_key["current_load"].mean,
                      by_key["total_request_modified"].mean)
    return {
        "remedies_improve_avg_rt": worst_remedy_rt < best_original_rt,
        "remedies_cut_vlrt": worst_remedy_vlrt < best_original_vlrt,
        "traffic_not_better_than_request": (
            by_key["original_total_traffic"].mean
            >= 0.8 * by_key["original_total_request"].mean),
        "combined_adds_nothing": combined <= 2.0 * best_single,
    }
