"""Lag-aware correlation.

The final link of the paper's causal chain — queue spikes to VLRT
completions — is *delayed*: a packet dropped during a queue spike only
completes one or more retransmission periods later.  Zero-lag Pearson
correlation misses it entirely; shifting the VLRT series back by the
retransmission timer makes the link visible and testable.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import align, pearson
from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries


def shift(series: TimeSeries, offset: float) -> TimeSeries:
    """Copy of ``series`` with every timestamp moved by ``offset``.

    Points whose shifted time would be negative are dropped (a series
    cannot start before t=0 in this framework).
    """
    out = TimeSeries(series.name)
    for time, value in series:
        if time + offset >= 0:
            out.append(time + offset, value)
    return out


def lagged_pearson(cause: TimeSeries, effect: TimeSeries,
                   lag: float) -> float:
    """Correlation of ``cause(t)`` with ``effect(t + lag)``."""
    if lag < 0:
        raise AnalysisError("lag must be >= 0 (cause precedes effect)")
    return pearson(cause, shift(effect, -lag))


def best_lag(cause: TimeSeries, effect: TimeSeries,
             max_lag: float, step: float) -> tuple[float, float]:
    """Scan lags in ``[0, max_lag]`` and return ``(lag, correlation)``
    of the strongest positive relationship.

    Applied to queue spikes vs VLRT windows, the winning lag recovers
    the TCP retransmission timer (~1 s) from the data alone.
    """
    if max_lag < 0 or step <= 0:
        raise AnalysisError("need max_lag >= 0 and step > 0")
    best = (0.0, lagged_pearson(cause, effect, 0.0))
    lag = step
    while lag <= max_lag + 1e-9:
        r = lagged_pearson(cause, effect, lag)
        if r > best[1]:
            best = (lag, r)
        lag += step
    return best
