"""Phase segmentation around a millibottleneck (§III-C).

The paper narrates one Tomcat1 stall in four phases:

1. **normal** — load spread evenly;
2. **millibottleneck** — all requests funnel into the stalled server;
3. **recovery** — the backlog drains; the balancer compensates by
   preferring the previously-starved healthy servers;
4. **normal** again.

:func:`segment` derives those four windows from a ground-truth stall
record; :func:`funnel_fraction` and :func:`distribution_by_phase`
quantify what each figure shows qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balancer import LoadBalancer
from repro.errors import AnalysisError
from repro.osmodel.pdflush import MillibottleneckRecord


@dataclass(frozen=True)
class Phases:
    """The four time windows around one stall."""

    normal_before: tuple[float, float]
    millibottleneck: tuple[float, float]
    recovery: tuple[float, float]
    normal_after: tuple[float, float]

    def as_dict(self) -> dict[str, tuple[float, float]]:
        return {
            "normal_before": self.normal_before,
            "millibottleneck": self.millibottleneck,
            "recovery": self.recovery,
            "normal_after": self.normal_after,
        }


def segment(record: MillibottleneckRecord,
            lead: float = 0.3,
            recovery: float = 0.3,
            tail: float = 0.3) -> Phases:
    """Build the four phases around one ground-truth stall record."""
    if min(lead, recovery, tail) <= 0:
        raise AnalysisError("phase lengths must be positive")
    start, end = record.started_at, record.ended_at
    return Phases(
        normal_before=(max(0.0, start - lead), start),
        millibottleneck=(start, end),
        recovery=(end, end + recovery),
        normal_after=(end + recovery, end + recovery + tail),
    )


def funnel_fraction(balancer: LoadBalancer, stalled: str,
                    window: tuple[float, float],
                    use_picks: bool = True) -> float:
    """Fraction of scheduling decisions aimed at the stalled member.

    With ``use_picks`` (default) the numerator counts *picks*,
    including workers that then blocked inside get_endpoint — the
    honest measure of the funnel.  Returns 0.0 when the balancer made
    no decisions in the window.
    """
    counts = (balancer.picks_between(*window) if use_picks
              else balancer.distribution_between(*window))
    total = sum(counts.values())
    return counts.get(stalled, 0) / total if total else 0.0


def distribution_by_phase(balancer: LoadBalancer, phases: Phases,
                          use_picks: bool = False
                          ) -> dict[str, dict[str, int]]:
    """Per-phase per-backend decision counts (Figs. 6(c)/9(b)/13(b))."""
    counter = (balancer.picks_between if use_picks
               else balancer.distribution_between)
    return {name: counter(*window)
            for name, window in phases.as_dict().items()}


def lock_on_fraction(balancer: LoadBalancer, stalled: str,
                     window: tuple[float, float], tail: int = 10) -> float:
    """Fraction of the *last* ``tail`` picks in ``window`` aimed at
    ``stalled``.

    The phase-2 funnel has a precise temporal shape: the rotation
    continues while the stalled member's endpoints absorb requests,
    then every subsequent pick targets the stalled member until no
    free worker remains (after which there are no picks at all).  The
    tail of the pick sequence inside the stall window is therefore the
    sharp signature — it goes to 1.0 when the funnel locks on.
    """
    if balancer.pick_trace is None:
        raise AnalysisError("pick tracing disabled on " + balancer.name)
    picks = [name for _, name in balancer.pick_trace.between(*window)]
    if not picks:
        return 0.0
    tail_picks = picks[-tail:]
    return sum(1 for name in tail_picks if name == stalled) / len(tail_picks)


def peak_growth(series, start: float, end: float,
                step: float = 0.05) -> float:
    """Largest increase of ``series`` over any ``step`` sub-window.

    Quantifies Fig. 10(b)'s "red peak": during recovery the stalled
    member's lb_value jumps abruptly as its accumulated requests flush
    through, so its peak growth rate towers over the healthy members'
    steady rotation increments.
    """
    if end <= start or step <= 0:
        raise AnalysisError("need start < end and positive step")
    best = 0.0
    probe = start
    while probe + step <= end + 1e-9:
        delta = series.value_at(probe + step) - series.value_at(probe)
        best = max(best, delta)
        probe += step / 2
    return best


def evenness(counts: dict[str, int]) -> float:
    """Max/mean ratio of a distribution; 1.0 is perfectly even.

    Used to assert "the load balancer distributes the workload evenly
    among the Tomcats" (§II-B) quantitatively.
    """
    values = list(counts.values())
    if not values or sum(values) == 0:
        raise AnalysisError("empty distribution")
    mean = sum(values) / len(values)
    return max(values) / mean
