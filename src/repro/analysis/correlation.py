"""Windowed correlation between fine-grained signals.

The paper's causal chain (Fig. 2) is established by eyeballing aligned
50 ms plots: dirty-page drops ↔ iowait saturation ↔ CPU saturation ↔
queue peaks ↔ VLRT clusters.  This module quantifies each "↔" as a
Pearson correlation between window-aligned series, so the chain can be
asserted in tests and printed in reports instead of eyeballed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries


def align(a: TimeSeries, b: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
    """Pair values of two series on (approximately) equal timestamps.

    Both inputs must be sampled on the same fixed grid (as everything
    produced by the runner is); points present in only one series are
    dropped from both ends.
    """
    if not len(a) or not len(b):
        raise AnalysisError("cannot align an empty series")
    a_times, a_values = a.as_arrays()
    b_times, b_values = b.as_arrays()
    start = max(a_times[0], b_times[0])
    end = min(a_times[-1], b_times[-1])
    if end < start:
        raise AnalysisError("series do not overlap in time")
    a_mask = (a_times >= start - 1e-9) & (a_times <= end + 1e-9)
    b_mask = (b_times >= start - 1e-9) & (b_times <= end + 1e-9)
    a_selected = a_values[a_mask]
    b_selected = b_values[b_mask]
    size = min(len(a_selected), len(b_selected))
    return a_selected[:size], b_selected[:size]


def pearson(a: TimeSeries, b: TimeSeries) -> float:
    """Pearson correlation of two aligned series.

    Returns 0.0 when either series is constant (undefined correlation),
    which is the conservative answer for "is there a relationship".
    """
    x, y = align(a, b)
    if len(x) < 2:
        raise AnalysisError("need at least two aligned samples")
    if float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def drops_of(series: TimeSeries) -> TimeSeries:
    """Per-step *decrease* of a series (positive where it fell).

    Turns a dirty-page timeline into a "flush activity" signal: the
    abrupt drops of Fig. 2(e) become positive pulses that line up with
    iowait saturation.
    """
    out = TimeSeries(series.name + ".drops")
    previous = None
    for time, value in series:
        if previous is not None:
            out.append(time, max(0.0, previous - value))
        previous = value
    return out


def causal_chain_report(dirty: TimeSeries, iowait: TimeSeries,
                        cpu: TimeSeries, queue: TimeSeries,
                        vlrt: TimeSeries) -> dict[str, float]:
    """Correlate every adjacent pair of the Fig. 2 causal chain.

    Keys are ``"dirty_drop~iowait"`` etc.; values are Pearson r.  The
    final link (queue to VLRT) is usually the weakest because drops
    turn into completions one or more retransmission periods later —
    callers should lag-shift if they need that link sharp.
    """
    flushes = drops_of(dirty)
    return {
        "dirty_drop~iowait": pearson(flushes, iowait),
        "iowait~cpu": pearson(iowait, cpu),
        "cpu~queue": pearson(cpu, queue),
        "queue~vlrt": pearson(queue, vlrt),
    }
