"""Export experiment data for external tooling.

Writes the series behind each figure as CSV and the summary numbers as
JSON, so the figures can be re-plotted with matplotlib/gnuplot/R
outside this repository.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.cluster.runner import ExperimentResult
from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries

PathLike = Union[str, Path]


def series_to_csv(series: TimeSeries, path: PathLike) -> None:
    """Write one series as ``time,value`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", series.name or "value"])
        for time, value in series:
            writer.writerow([repr(time), repr(value)])


def series_from_csv(path: PathLike) -> TimeSeries:
    """Read a series written by :func:`series_to_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or len(header) != 2:
            raise AnalysisError("not a series CSV: " + str(path))
        series = TimeSeries(header[1])
        for row in reader:
            series.append(float(row[0]), float(row[1]))
    return series


def export_result(result: ExperimentResult, directory: PathLike) -> Path:
    """Dump everything a figure needs into ``directory``.

    Writes per-server queue CSVs, per-host CPU/iowait CSVs, the
    point-in-time RT and VLRT-window CSVs, dirty-page CSVs when
    sampled, and a ``summary.json`` with the Table-I numbers.  Returns
    the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    for name, series in result.queue_series.items():
        series_to_csv(series, directory / "queue_{}.csv".format(name))
    for name, series in result.dirty_series.items():
        series_to_csv(series, directory / "dirty_{}.csv".format(name))
    for server in result.system.servers:
        series_to_csv(result.cpu_utilization(server.name),
                      directory / "cpu_{}.csv".format(server.name))
        series_to_csv(result.iowait(server.name),
                      directory / "iowait_{}.csv".format(server.name))
    series_to_csv(result.point_in_time_rt(), directory / "rt.csv")
    series_to_csv(result.vlrt_windows(), directory / "vlrt.csv")

    summary = {
        "bundle": result.config.bundle_key,
        "duration": result.duration,
        "seed": result.config.seed,
        "table1_row": result.table1_row(),
        "dropped_packets": result.dropped_packets(),
        "average_cpu": result.average_cpu(),
        "millibottlenecks": [
            {
                "host": record.host,
                "started_at": record.started_at,
                "ended_at": record.ended_at,
                "bytes_flushed": record.bytes_flushed,
            }
            for record in result.system.millibottleneck_records()
        ],
    }
    with open(directory / "summary.json", "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    return directory
