"""Millibottleneck detection from observable signals.

The simulator records ground truth (every flush burst appends a
:class:`~repro.osmodel.pdflush.MillibottleneckRecord`), but the paper's
operators only had *observables*: fine-grained CPU utilisation, iowait,
queue lengths, dirty-page counters.  This module implements the paper's
detection chain on observables only, so it can be validated against
ground truth — which is exactly what the tests do.

Detection chain (following §III-B):

1. find transient full-utilisation windows in fine-grained CPU series;
2. corroborate with iowait saturation in the same windows;
3. attribute to dirty-page flushing when the dirty set drops abruptly
   at the same moment;
4. link to queue spikes on the same server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries

#: A window counts as saturated above this utilisation.
SATURATION_LEVEL = 0.95


@dataclass(frozen=True)
class DetectedMillibottleneck:
    """One detected transient saturation on one server."""

    server: str
    started_at: float
    ended_at: float
    #: Mean iowait fraction during the interval (0 when not computed).
    iowait_level: float = 0.0
    #: Bytes the dirty set dropped by during the interval.
    dirty_drop: float = 0.0

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    @property
    def io_induced(self) -> bool:
        """Whether iowait explains the saturation (Fig. 2(d) check)."""
        return self.iowait_level >= 0.5

    @property
    def flush_induced(self) -> bool:
        """Whether a dirty-page drop coincided (Fig. 2(e) check)."""
        return self.dirty_drop > 0


def saturated_windows(utilization: TimeSeries, window: float,
                      level: float = SATURATION_LEVEL
                      ) -> list[tuple[float, float]]:
    """Merge consecutive saturated windows into ``(start, end)`` spans."""
    if not 0 < level <= 1:
        raise AnalysisError("level must be in (0, 1]")
    spans: list[tuple[float, float]] = []
    current: Optional[list[float]] = None
    for time, value in utilization:
        if value >= level:
            if current is None:
                current = [time, time + window]
            else:
                current[1] = time + window
        elif current is not None:
            spans.append((current[0], current[1]))
            current = None
    if current is not None:
        spans.append((current[0], current[1]))
    return spans


def detect(server: str,
           cpu_utilization: TimeSeries,
           window: float,
           iowait: Optional[TimeSeries] = None,
           dirty: Optional[TimeSeries] = None,
           level: float = SATURATION_LEVEL,
           max_duration: float = 1.0) -> list[DetectedMillibottleneck]:
    """Run the full detection chain for one server.

    ``max_duration`` filters out sustained saturation — a
    millibottleneck is by definition transient (tens to hundreds of
    milliseconds); anything longer is an ordinary bottleneck.
    """
    out = []
    for start, end in saturated_windows(cpu_utilization, window, level):
        if end - start > max_duration:
            continue
        iowait_level = 0.0
        if iowait is not None:
            values = [value for time, value in iowait
                      if start <= time < end]
            iowait_level = sum(values) / len(values) if values else 0.0
        dirty_drop = 0.0
        if dirty is not None and len(dirty):
            # Look one window earlier for the "before" level: the CPU
            # saturation is only visible from the window *after* the
            # flush began, by which time the dirty counter has already
            # been zeroed.
            probe = max(dirty.times[0], start - 2 * window)
            before = dirty.value_at(probe)
            after = dirty.value_at(end) if dirty.times[0] <= end else 0.0
            dirty_drop = max(0.0, before - after)
        out.append(DetectedMillibottleneck(
            server=server, started_at=start, ended_at=end,
            iowait_level=iowait_level, dirty_drop=dirty_drop))
    return out


def match_ground_truth(detected: Sequence[DetectedMillibottleneck],
                       records, slack: float = 0.06
                       ) -> tuple[int, int, int]:
    """Compare detections against ground-truth flush records.

    Returns ``(true_positives, false_positives, false_negatives)``.
    A detection matches a record when their intervals overlap within
    ``slack`` seconds.
    """
    matched_records = set()
    true_positives = 0
    for detection in detected:
        hit = False
        for index, record in enumerate(records):
            if (detection.started_at - slack < record.ended_at
                    and record.started_at - slack < detection.ended_at):
                matched_records.add(index)
                hit = True
        if hit:
            true_positives += 1
    false_positives = len(detected) - true_positives
    false_negatives = len(records) - len(matched_records)
    return true_positives, false_positives, false_negatives
