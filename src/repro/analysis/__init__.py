"""The paper's diagnostic methodology, made programmatic.

Queue-peak detection, millibottleneck detection from observables,
causal-chain correlation (including lag scanning, which recovers the
TCP retransmission timer from data), phase segmentation around stalls,
funnel/lock-on metrics, report builders, CSV/JSON export, and terminal
plotting.
"""

from repro.analysis.asciiplot import histogram, sparkline, table, timeline
from repro.analysis.correlation import (
    align,
    causal_chain_report,
    drops_of,
    pearson,
)
from repro.analysis.export import export_result, series_from_csv, series_to_csv
from repro.analysis.lag import best_lag, lagged_pearson, shift
from repro.analysis.millibottleneck import (
    SATURATION_LEVEL,
    DetectedMillibottleneck,
    detect,
    match_ground_truth,
    saturated_windows,
)
from repro.analysis.phases import (
    Phases,
    distribution_by_phase,
    evenness,
    funnel_fraction,
    lock_on_fraction,
    peak_growth,
    segment,
)
from repro.analysis.queueing import (
    QueuePeak,
    adaptive_threshold,
    coinciding_peaks,
    find_peaks,
    tier_series,
)
from repro.analysis.report import (
    PAPER_TABLE1,
    improvement_factors,
    shape_check,
    table1,
    table1_with_paper,
)

__all__ = [
    "QueuePeak",
    "find_peaks",
    "adaptive_threshold",
    "tier_series",
    "coinciding_peaks",
    "DetectedMillibottleneck",
    "detect",
    "saturated_windows",
    "match_ground_truth",
    "SATURATION_LEVEL",
    "pearson",
    "align",
    "drops_of",
    "causal_chain_report",
    "lagged_pearson",
    "best_lag",
    "shift",
    "export_result",
    "series_to_csv",
    "series_from_csv",
    "Phases",
    "segment",
    "funnel_fraction",
    "lock_on_fraction",
    "peak_growth",
    "distribution_by_phase",
    "evenness",
    "table1",
    "table1_with_paper",
    "improvement_factors",
    "shape_check",
    "PAPER_TABLE1",
    "sparkline",
    "timeline",
    "histogram",
    "table",
]
