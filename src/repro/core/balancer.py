"""The two-level mod_jk load balancer (§II-A).

Upper level: the *policy* ranks backends by lb_value.  Lower level: the
*mechanism* (``get_endpoint``) obtains a connection to the chosen
candidate.  One :class:`LoadBalancer` instance runs inside each Apache;
the 3-state member lifecycle, per-backend connection pools, dispatch
traces and lb_value traces all live here.

:class:`DirectDispatcher` is the degenerate no-balancer configuration
used by the paper's §III-B single-node experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.core.member import DEFAULT_POOL_SIZE, BalancerMember
from repro.core.mechanism import GetEndpointMechanism
from repro.core.policies import Policy
from repro.core.states import MemberState, StateConfig
from repro.errors import ConfigurationError, NoCandidateError
from repro.metrics.windows import PAPER_WINDOW, WindowedCounter
from repro.netmodel.sockets import Link
from repro.sim.events import Event
from repro.sim.monitor import TraceLog
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.tiers.tomcat import TomcatServer


@dataclass(frozen=True)
class BalancerConfig:
    """Per-balancer wiring knobs.

    ``retry_pause`` is the small delay inserted after a failed endpoint
    acquisition before re-ranking candidates; it models the worker
    thread bouncing back through the scheduler (and keeps an
    immediate-failure mechanism from spinning in zero simulated time).
    """

    pool_size: int = DEFAULT_POOL_SIZE
    link_latency: float = 0.0002
    retry_pause: float = 0.002
    trace_lb_values: bool = True
    trace_dispatches: bool = True
    #: Whether AJP connections start established (warm keep-alive pool).
    preconnect: bool = True

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        if self.link_latency < 0:
            raise ConfigurationError("link_latency must be >= 0")
        if self.retry_pause <= 0:
            raise ConfigurationError("retry_pause must be positive")


class LoadBalancer:
    """One Apache's view of the application tier."""

    def __init__(self, env: "Environment", name: str,
                 backends: Sequence["TomcatServer"],
                 policy: Policy,
                 mechanism: GetEndpointMechanism,
                 rng: np.random.Generator,
                 config: BalancerConfig | None = None,
                 state_config: StateConfig | None = None,
                 weights: Optional[Sequence[float]] = None,
                 link_factory: Optional[Callable[[object], Link]] = None
                 ) -> None:
        if not backends:
            raise ConfigurationError("balancer needs at least one backend")
        if weights is not None:
            if len(weights) != len(backends):
                raise ConfigurationError(
                    "need one weight per backend ({} != {})".format(
                        len(weights), len(backends)))
            if any(w <= 0 for w in weights):
                raise ConfigurationError("member weights must be positive")
        self.env = env
        self.name = name
        self.policy = policy
        self.mechanism = mechanism
        self.config = config or BalancerConfig()
        self._rng = rng
        # Kept for members added after construction (autoscaling).
        self._state_config = state_config
        #: Builds the member link for a backend; ``None`` keeps the
        #: legacy fixed-latency intra-cluster link.  The topology
        #: builder passes one for zoned systems so cross-zone members
        #: get WAN-profiled links.
        self._link_factory = link_factory
        self.members = [
            BalancerMember(
                env, server, index,
                pool_size=self.config.pool_size,
                state_config=state_config,
                link=self._make_link(server),
                trace_lb_values=self.config.trace_lb_values,
                preconnect=self.config.preconnect,
            )
            for index, server in enumerate(backends)
        ]
        #: (time, backend-name) per successful dispatch (Figs. 6c/9b/13b).
        self.dispatch_trace: Optional[TraceLog] = (
            TraceLog(env, name + ".dispatch")
            if self.config.trace_dispatches else None)
        #: (time, backend-name) per *pick* — including picks whose
        #: worker then blocks inside get_endpoint.  During phase 2 the
        #: pick trace shows the full funnel onto the stalled member.
        self.pick_trace: Optional[TraceLog] = (
            TraceLog(env, name + ".pick")
            if self.config.trace_dispatches else None)
        self.dispatches = 0
        self.endpoint_failures = 0
        #: Members removed by scale-down; kept for accounting (their
        #: dispatch counts stay part of the balancer's totals).
        self.retired_members: list[BalancerMember] = []
        #: Monotonic member index — unique across add/retire churn.
        self._member_serial = len(self.members)
        #: Whether members carry circuit breakers (see install_breakers).
        self._breaker_gate = False
        self._breaker_factory: Optional[Callable[[], object]] = None
        self.breaker_rejections = 0
        #: Fast-path flag: while every member is Available, ``_pick``
        #: skips the per-member eligibility scan entirely — the O(N)
        #: filter per dispatch is the scan cliff at large member
        #: counts.  Members notify on every state transition (rare:
        #: transitions only happen around endpoint failures/recoveries)
        #: and the flag is recomputed then.
        self._all_available = True
        for member in self.members:
            member.on_state_change = self._member_state_changed
        if weights is not None:
            for member, weight in zip(self.members, weights):
                member.weight = float(weight)
        # Last step of construction: the policy may start its probe
        # pool here (classic policies no-op, keeping them zero-event).
        self.policy.attach(self)

    def _make_link(self, server) -> Link:
        if self._link_factory is not None:
            return self._link_factory(server)
        return Link(self.env, self.config.link_latency,
                    name="{}->{}".format(self.name, server.name))

    def _member_state_changed(self, member: BalancerMember) -> None:
        self._all_available = all(
            m.state is MemberState.AVAILABLE for m in self.members)
        self.policy.on_member_state(member)

    # -- membership (autoscaling) ---------------------------------------------
    def add_member(self, server, preconnect: bool = False) -> BalancerMember:
        """Join ``server`` to the rotation, cold by default.

        ``preconnect=False`` models a freshly provisioned backend: no
        established AJP connections, so its first requests pay the
        connection handshake (which needs the server responsive) like a
        real just-booted replica.  When the balancer is breaker-gated,
        the new member gets its own breaker from the factory recorded
        by :meth:`install_breakers`.
        """
        member = BalancerMember(
            self.env, server, self._member_serial,
            pool_size=self.config.pool_size,
            state_config=self._state_config,
            link=self._make_link(server),
            trace_lb_values=self.config.trace_lb_values,
            preconnect=preconnect,
        )
        self._member_serial += 1
        member.on_state_change = self._member_state_changed
        if self._breaker_gate:
            if self._breaker_factory is None:
                raise ConfigurationError(
                    "{} is breaker-gated but has no breaker factory; "
                    "pass factory= to install_breakers".format(self.name))
            member.breaker = self._breaker_factory()
        self.members.append(member)
        self._member_state_changed(member)
        self.policy.on_member_added(member)
        return member

    def retire_member(self, name: str) -> BalancerMember:
        """Remove the member for backend ``name`` from the rotation.

        The member moves to :attr:`retired_members` so completed-work
        accounting (and in-flight requests holding a reference) stay
        intact; it simply stops being a dispatch candidate.
        """
        for position, member in enumerate(self.members):
            if member.name == name:
                break
        else:
            raise ConfigurationError(
                "{} has no member named {}".format(self.name, name))
        if len(self.members) == 1:
            raise ConfigurationError(
                "cannot retire the last member of " + self.name)
        member = self.members.pop(position)
        self.retired_members.append(member)
        self._member_state_changed(member)
        self.policy.on_member_removed(member)
        return member

    # -- resilience wiring ----------------------------------------------------
    def install_breakers(self, breakers: Sequence,
                         factory: Optional[Callable[[], object]] = None
                         ) -> None:
        """Attach one circuit breaker per member and gate dispatch on them.

        ``breakers`` must align with :attr:`members`.  The mechanism is
        wrapped so every endpoint acquisition reports its outcome to
        the member's breaker; candidate ranking skips members whose
        breaker is open (unless every breaker is), and dispatch rejects
        through :meth:`~repro.resilience.breaker.CircuitBreaker.allow`
        without touching the 3-state machine.
        """
        from repro.core.mechanism import BreakerGuardedMechanism

        if len(breakers) != len(self.members):
            raise ConfigurationError(
                "need one breaker per member ({} != {})".format(
                    len(breakers), len(self.members)))
        for member, breaker in zip(self.members, breakers):
            member.breaker = breaker
        self.mechanism = BreakerGuardedMechanism(self.mechanism)
        self._breaker_gate = True
        self._breaker_factory = factory

    # -- candidate selection --------------------------------------------------
    def _pick(self, request: Optional[Request] = None
              ) -> Optional[BalancerMember]:
        """Choose a candidate, honouring the 3-state machine.

        Available (and recheck-eligible Busy / recovery-eligible Error)
        members compete via the policy; if none qualifies, any
        non-Error member may be retried; if all members are Error,
        ``None`` signals NoCandidate.
        """
        if self._all_available and not self._breaker_gate:
            # Every member is Available, so the eligibility filter
            # would return all of them: hand the member list to the
            # policy as-is (policies only read the sequence).
            return self.policy.select(self.members, self._rng, request)
        now = self.env.now
        eligible = [m for m in self.members if m.eligible(now)]
        if self._breaker_gate and eligible:
            admitted = [m for m in eligible if m.breaker.admits(now)]
            if admitted:
                eligible = admitted
            # else fail open: with every breaker open, the gate yields
            # to the 3-state machine rather than blacking out the
            # cluster; allow() still meters trials on dispatch.
        if not eligible:
            eligible = [m for m in self.members
                        if m.state is not MemberState.ERROR]
            if not eligible:
                return None
        return self.policy.select(eligible, self._rng, request)

    # -- dispatch ---------------------------------------------------------
    def dispatch(self, request: Request):
        """Process generator: forward ``request``, return when answered.

        Raises :class:`NoCandidateError` when every backend is Error.
        """
        tracer = self.env.tracer
        span = (tracer.start(request.request_id, "balancer.dispatch",
                             balancer=self.name)
                if tracer is not None else None)
        try:
            while True:
                if request.cancelled:
                    # A hedging race this request belonged to is already
                    # decided; stop instead of re-entering the scheduler.
                    if tracer is not None:
                        tracer.finish(span, outcome="cancelled")
                    return request  # statan: ignore[PROC003] -- process value
                member = self._pick(request)
                if member is None:
                    raise NoCandidateError(
                        "{}: all backends in Error state".format(self.name))
                breaker = member.breaker
                if breaker is not None and not breaker.allow():
                    # Open breaker: instant rejection with no
                    # state-machine penalty — the breaker is already
                    # doing the excluding, and mark_busy() here would
                    # escalate a member toward Error merely for being
                    # breaker-open.
                    self.breaker_rejections += 1
                    if tracer is None:
                        yield self.env.timeout(self.config.retry_pause)
                    else:
                        pause = tracer.start(request.request_id,
                                             "balancer.breaker_pause",
                                             member=member.name)
                        yield self.env.timeout(self.config.retry_pause)
                        tracer.finish(pause)
                    continue
                self.policy.on_pick(member, request)
                if self.pick_trace is not None:
                    self.pick_trace.log(member.name)
                if tracer is None:
                    endpoint = yield from self.mechanism.get_endpoint(
                        member)
                else:
                    # The decision span: which member the policy chose,
                    # and how long the worker then waited for one of
                    # its endpoints (the §IV-B funnel, mod_jk's
                    # cache_acquire_timeout poll loop).
                    wait = tracer.start(request.request_id,
                                        "balancer.endpoint_wait",
                                        member=member.name)
                    endpoint = yield from self.mechanism.get_endpoint(
                        member)
                    tracer.finish(wait, acquired=endpoint is not None)
                if endpoint is None:
                    # §IV-A: failing to return an endpoint moves the
                    # member toward Busy (and eventually Error).
                    self.policy.on_pick_abandoned(member, request)
                    member.mark_busy()
                    self.endpoint_failures += 1
                    if tracer is None:
                        yield self.env.timeout(self.config.retry_pause)
                    else:
                        pause = tracer.start(request.request_id,
                                             "balancer.retry_pause",
                                             member=member.name)
                        yield self.env.timeout(self.config.retry_pause)
                        tracer.finish(pause)
                    continue
                yield from self._send(member, endpoint, request)
                if tracer is not None:
                    tracer.finish(span, outcome="dispatched",
                                  member=member.name)
                return request  # statan: ignore[PROC003] -- process value
        finally:
            # Normally closed above; an interrupt, a NoCandidateError
            # or a fault unwinding the worker closes it here instead.
            if tracer is not None:
                tracer.finish(span, outcome="error")

    def _send(self, member: BalancerMember, endpoint, request: Request):
        # A successful acquisition is proof of life.
        member.mark_available()
        member.dispatched += 1
        member.inflight += 1
        self.dispatches += 1
        request.served_by = member.name
        request.dispatched_at = self.env.now
        if self.dispatch_trace is not None:
            self.dispatch_trace.log(member.name)
        self.policy.on_dispatch(member, request)
        tracer = self.env.tracer
        span = (tracer.start(request.request_id, "balancer.send",
                             member=member.name)
                if tracer is not None else None)
        try:
            yield from member.send(request)
        finally:
            member.inflight -= 1
            endpoint.release()
            if tracer is not None:
                tracer.finish(span)
        member.completed += 1
        self.policy.on_complete(member, request)

    # -- analysis helpers ---------------------------------------------------
    def distribution_between(self, start: float,
                             end: float) -> dict[str, int]:
        """Dispatches per backend in ``[start, end)`` (Fig. 6(c) et al.)."""
        return self._counts(self.dispatch_trace, start, end)

    def picks_between(self, start: float, end: float) -> dict[str, int]:
        """Picks per backend in ``[start, end)`` (the phase-2 funnel)."""
        return self._counts(self.pick_trace, start, end)

    def _counts(self, trace: Optional[TraceLog], start: float,
                end: float) -> dict[str, int]:
        if trace is None:
            raise ConfigurationError(
                "dispatch tracing disabled on " + self.name)
        counts: dict[str, int] = {
            m.name: 0 for m in self.members + self.retired_members}
        for _, backend in trace.between(start, end):
            counts[backend] = counts.get(backend, 0) + 1
        return counts

    def distribution_windows(self, window: float = PAPER_WINDOW,
                             until: Optional[float] = None
                             ) -> dict[str, "object"]:
        """Per-backend dispatch counts in fixed windows, as TimeSeries."""
        if self.dispatch_trace is None:
            raise ConfigurationError(
                "dispatch tracing disabled on " + self.name)
        counters = {m.name: WindowedCounter(window, m.name)
                    for m in self.members + self.retired_members}
        for time, backend in self.dispatch_trace:
            counters[backend].record(time)
        return {name: counter.series(until=until)
                for name, counter in counters.items()}

    def member_named(self, name: str) -> BalancerMember:
        for member in self.members:
            if member.name == name:
                return member
        raise ConfigurationError("no member named " + name)

    def __repr__(self) -> str:
        return "<LoadBalancer {} policy={} mechanism={}>".format(
            self.name, self.policy.name, self.mechanism.name)


class DirectDispatcher:
    """No load balancer: requests go straight to a backend, no policy.

    With a single backend this models the paper's §III-B configuration
    (1 Apache / 1 Tomcat / 1 MySQL), used to show that millibottlenecks
    cause VLRT requests even before any scheduling pathology.  Given
    several backends it statically round-robins over them — DNS-style
    spreading with no lb_value ranking, no endpoint probing and no
    3-state machine, the strawman every mod_jk policy is measured
    against.
    """

    def __init__(self, env: "Environment",
                 backend: "TomcatServer" | Sequence["TomcatServer"],
                 link_latency: float = 0.0002,
                 link_factory: Optional[Callable[[object], Link]] = None
                 ) -> None:
        backends = (list(backend) if isinstance(backend, Sequence)
                    else [backend])
        if not backends:
            raise ConfigurationError(
                "direct dispatcher needs at least one backend")
        self.env = env
        self.backends = backends
        self._link_latency = link_latency
        self._link_factory = link_factory
        self.links = [self._make_link(server) for server in backends]
        self.dispatches = 0

    def _make_link(self, server) -> Link:
        if self._link_factory is not None:
            return self._link_factory(server)
        return Link(self.env, self._link_latency,
                    name="direct->" + server.name)

    def add_backend(self, server) -> None:
        """Join ``server`` to the static round-robin rotation."""
        self.backends.append(server)
        self.links.append(self._make_link(server))

    def remove_backend(self, server) -> None:
        """Drop ``server`` from the rotation (in-flight work completes
        through references already held)."""
        if len(self.backends) == 1:
            raise ConfigurationError(
                "cannot remove the last backend of a direct dispatcher")
        position = self.backends.index(server)
        self.backends.pop(position)
        self.links.pop(position)

    @property
    def backend(self) -> "TomcatServer":
        """The sole backend of the classic single-server configuration."""
        return self.backends[0]

    @property
    def link(self) -> Link:
        return self.links[0]

    def dispatch(self, request: Request):
        """Process generator: forward ``request`` to the next backend."""
        index = self.dispatches % len(self.backends)
        backend, link = self.backends[index], self.links[index]
        self.dispatches += 1
        request.served_by = backend.name
        request.dispatched_at = self.env.now
        tracer = self.env.tracer
        span = (tracer.start(request.request_id, "balancer.send",
                             member=backend.name, direct=True)
                if tracer is not None else None)
        reply: Event = Event(self.env)
        try:
            if link.profile is None:
                yield link.delay()
                backend.submit(request, reply)
                yield reply
                yield link.delay()
            else:
                yield from link.transit(request)
                backend.submit(request, reply)
                yield reply
                yield from link.transit(request)
        finally:
            if tracer is not None:
                tracer.finish(span)
        return request  # statan: ignore[PROC003] -- process value


class ZoneRouter:
    """Locality-first routing over per-zone load balancers.

    The zone-hierarchy alternative to one flat balancer: the upstream
    server keeps a *zone-local* :class:`LoadBalancer` per zone and
    prefers its own zone — a request only crosses the WAN when the
    local zone has no dispatchable candidate (every local member in
    Error), at which point it *spills over* to the remaining zones in
    deterministic (sorted) order.  Whether that containment actually
    helps against millibottlenecks is the experiment, not a premise.
    """

    def __init__(self, env: "Environment", name: str,
                 zone_balancers: dict[str, LoadBalancer],
                 home_zone: str) -> None:
        if not zone_balancers:
            raise ConfigurationError(
                "zone router needs at least one zone balancer")
        if home_zone not in zone_balancers:
            raise ConfigurationError(
                "zone router {!r}: home zone {!r} has no balancer "
                "(zones: {})".format(name, home_zone,
                                     ", ".join(sorted(zone_balancers))))
        self.env = env
        self.name = name
        self.home_zone = home_zone
        #: zone name -> zone-local balancer (stable, sorted iteration).
        self.zone_balancers = dict(sorted(zone_balancers.items()))
        #: Spill order after the home zone: sorted remote zone names.
        self._spill_zones = [zone for zone in self.zone_balancers
                             if zone != home_zone]
        self.dispatches = 0
        self.local_dispatches = 0
        #: Requests the home zone could not place (all local members
        #: Error) that were re-dispatched across the WAN.
        self.spillovers = 0

    @property
    def backends(self) -> list:
        """Every live backend across all zones (membership protocol)."""
        servers = []
        for balancer in self.zone_balancers.values():
            servers.extend(m.server for m in balancer.members)
        return servers

    def balancer_for(self, server) -> LoadBalancer:
        """The zone-local balancer owning ``server``'s zone."""
        zone = getattr(server, "zone", None) or self.home_zone
        try:
            return self.zone_balancers[zone]
        except KeyError:
            raise ConfigurationError(
                "zone router {!r} has no balancer for zone {!r}".format(
                    self.name, zone))

    def add_backend(self, server) -> None:
        """Join a (scaled-in) backend to its zone's balancer, cold."""
        self.balancer_for(server).add_member(server, preconnect=False)

    def retire_member(self, name: str) -> BalancerMember:
        """Retire the member named ``name`` from whichever zone owns it."""
        for balancer in self.zone_balancers.values():
            if any(member.name == name for member in balancer.members):
                return balancer.retire_member(name)
        raise ConfigurationError(
            "{} has no member named {}".format(self.name, name))

    def dispatch(self, request: Request):
        """Process generator: locality-first dispatch with spillover."""
        self.dispatches += 1
        try:
            result = yield from self.zone_balancers[
                self.home_zone].dispatch(request)
            self.local_dispatches += 1
            return result  # statan: ignore[PROC003] -- process value
        except NoCandidateError:
            pass
        tracer = self.env.tracer
        for zone in list(self._spill_zones):
            if tracer is not None:
                tracer.instant(request.request_id, "zone.spillover",
                               router=self.name, to_zone=zone)
            try:
                result = yield from self.zone_balancers[zone].dispatch(
                    request)
                self.spillovers += 1
                return result  # statan: ignore[PROC003] -- process value
            except NoCandidateError:
                continue
        raise NoCandidateError(
            "{}: every zone's backends are in Error state".format(
                self.name))

    def __repr__(self) -> str:
        return "<ZoneRouter {} home={} zones={} spillovers={}>".format(
            self.name, self.home_zone,
            ",".join(self.zone_balancers), self.spillovers)
