"""Named policy x mechanism bundles — the six rows of Table I.

The paper evaluates the cross product of {original, remedied} policy
and {original, modified} mechanism.  A :class:`RemedyBundle` names one
combination and builds fresh policy/mechanism instances for each
balancer (policies are stateful; they must never be shared between
Apaches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mechanism import GetEndpointMechanism, make_mechanism
from repro.core.policies import Policy, make_policy
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RemedyBundle:
    """One (policy, mechanism) combination under its Table-I name."""

    key: str
    policy_name: str
    mechanism_name: str
    description: str

    def make_policy(self) -> Policy:
        return make_policy(self.policy_name)

    def make_mechanism(self) -> GetEndpointMechanism:
        return make_mechanism(self.mechanism_name)

    @property
    def is_remedied(self) -> bool:
        """Whether at least one level carries a remedy."""
        return (self.policy_name == "current_load"
                or self.mechanism_name == "modified")


#: Table I rows, in the paper's order.
TABLE1_BUNDLES: tuple[RemedyBundle, ...] = (
    RemedyBundle(
        key="original_total_request",
        policy_name="total_request",
        mechanism_name="original",
        description="Original total_request",
    ),
    RemedyBundle(
        key="original_total_traffic",
        policy_name="total_traffic",
        mechanism_name="original",
        description="Original total_traffic",
    ),
    RemedyBundle(
        key="current_load",
        policy_name="current_load",
        mechanism_name="original",
        description="Current_load",
    ),
    RemedyBundle(
        key="total_request_modified",
        policy_name="total_request",
        mechanism_name="modified",
        description="Total_request with modified get_endpoint",
    ),
    RemedyBundle(
        key="total_traffic_modified",
        policy_name="total_traffic",
        mechanism_name="modified",
        description="Total_traffic with modified get_endpoint",
    ),
    RemedyBundle(
        key="current_load_modified",
        policy_name="current_load",
        mechanism_name="modified",
        description="Current_workload with modified get_endpoint",
    ),
)

BUNDLES: dict[str, RemedyBundle] = {
    bundle.key: bundle for bundle in TABLE1_BUNDLES
}


def get_bundle(key: str) -> RemedyBundle:
    """Look up a Table-I bundle by key."""
    try:
        return BUNDLES[key]
    except KeyError:
        raise ConfigurationError(
            "unknown remedy bundle: {} (have: {})".format(
                key, ", ".join(sorted(BUNDLES)))) from None
