"""Named policy x mechanism bundles — the six rows of Table I.

The paper evaluates the cross product of {original, remedied} policy
and {original, modified} mechanism.  A :class:`RemedyBundle` names one
combination and builds fresh policy/mechanism instances for each
balancer (policies are stateful; they must never be shared between
Apaches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mechanism import GetEndpointMechanism, make_mechanism
from repro.core.policies import Policy, make_policy
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RemedyBundle:
    """One (policy, mechanism) combination under its Table-I name."""

    key: str
    policy_name: str
    mechanism_name: str
    description: str

    def make_policy(self) -> Policy:
        return make_policy(self.policy_name)

    def make_mechanism(self) -> GetEndpointMechanism:
        return make_mechanism(self.mechanism_name)

    @property
    def is_remedied(self) -> bool:
        """Whether at least one level carries a remedy."""
        return (self.policy_name == "current_load"
                or self.mechanism_name == "modified")


#: Table I rows, in the paper's order.
TABLE1_BUNDLES: tuple[RemedyBundle, ...] = (
    RemedyBundle(
        key="original_total_request",
        policy_name="total_request",
        mechanism_name="original",
        description="Original total_request",
    ),
    RemedyBundle(
        key="original_total_traffic",
        policy_name="total_traffic",
        mechanism_name="original",
        description="Original total_traffic",
    ),
    RemedyBundle(
        key="current_load",
        policy_name="current_load",
        mechanism_name="original",
        description="Current_load",
    ),
    RemedyBundle(
        key="total_request_modified",
        policy_name="total_request",
        mechanism_name="modified",
        description="Total_request with modified get_endpoint",
    ),
    RemedyBundle(
        key="total_traffic_modified",
        policy_name="total_traffic",
        mechanism_name="modified",
        description="Total_traffic with modified get_endpoint",
    ),
    RemedyBundle(
        key="current_load_modified",
        policy_name="current_load",
        mechanism_name="modified",
        description="Current_workload with modified get_endpoint",
    ),
)

#: The modern-policy zoo, each paired with the *original* mechanism so
#: the rematch isolates the policy level: whatever a modern policy buys
#: against millibottlenecks, it buys without the paper's §V-C
#: mechanism fix.
MODERN_BUNDLES: tuple[RemedyBundle, ...] = (
    RemedyBundle(
        key="prequal",
        policy_name="prequal",
        mechanism_name="original",
        description="Prequal probing (hot/cold RIF+latency)",
    ),
    RemedyBundle(
        key="jsq_d",
        policy_name="jsq_d",
        mechanism_name="original",
        description="JSQ(d) power-of-d sampling",
    ),
    RemedyBundle(
        key="jiq",
        policy_name="jiq",
        mechanism_name="original",
        description="Join-idle-queue",
    ),
    RemedyBundle(
        key="weighted_least_conn",
        policy_name="weighted_least_conn",
        mechanism_name="original",
        description="Weighted least-connections",
    ),
    RemedyBundle(
        key="sticky",
        policy_name="sticky",
        mechanism_name="original",
        description="Sticky sessions (current_load fallback)",
    ),
)

BUNDLES: dict[str, RemedyBundle] = {
    bundle.key: bundle for bundle in TABLE1_BUNDLES + MODERN_BUNDLES
}


def get_bundle(key: str) -> RemedyBundle:
    """Look up a Table-I bundle by key."""
    try:
        return BUNDLES[key]
    except KeyError:
        raise ConfigurationError(
            "unknown remedy bundle: {} (have: {})".format(
                key, ", ".join(sorted(BUNDLES)))) from None
