"""The get_endpoint mechanism — the lower level of mod_jk's scheduler.

:class:`OriginalGetEndpoint` is Algorithm 1 from the paper: poll the
chosen candidate for a free endpoint, sleeping ``JK_SLEEP_DEF`` between
probes, until ``cache_acquire_timeout`` elapses.  The candidate's state
and lb_value are *not* updated while polling — so during a
millibottleneck shorter than the timeout the stalled server both stays
"Available" and holds the best lb_value, and every worker thread of
every Apache funnels into this loop (§IV-B).

:class:`ModifiedGetEndpoint` is the paper's mechanism-level remedy
(§IV-C): probe exactly once; if the candidate cannot respond
immediately, give up so the balancer can mark it Busy and move on.
Conservative by design — a millibottleneck is indistinguishable from a
permanent failure in the moment, and a busy verdict is cheap to undo.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.member import BalancerMember, Endpoint
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: mod_jk's default cache_acquire_timeout (seconds).
DEFAULT_CACHE_ACQUIRE_TIMEOUT = 0.300
#: mod_jk's default JK_SLEEP_DEF (seconds).
DEFAULT_JK_SLEEP = 0.100


class GetEndpointMechanism:
    """Interface: obtain an endpoint from a candidate, or fail."""

    name = "abstract"

    def get_endpoint(self, member: BalancerMember):
        """Process generator returning an :class:`Endpoint` or ``None``."""
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:
        return "<Mechanism {}>".format(self.name)


class OriginalGetEndpoint(GetEndpointMechanism):
    """Algorithm 1: poll-with-sleep until the timeout elapses."""

    name = "original"

    def __init__(self,
                 cache_acquire_timeout: float = DEFAULT_CACHE_ACQUIRE_TIMEOUT,
                 jk_sleep: float = DEFAULT_JK_SLEEP) -> None:
        if cache_acquire_timeout < 0:
            raise ConfigurationError("cache_acquire_timeout must be >= 0")
        if jk_sleep <= 0:
            raise ConfigurationError("jk_sleep must be positive")
        self.cache_acquire_timeout = cache_acquire_timeout
        self.jk_sleep = jk_sleep
        #: Seconds worker threads spent blocked inside the poll loop.
        self.time_spent_polling = 0.0
        self.timeouts = 0

    def get_endpoint(self, member: BalancerMember):
        retry = 0
        started = member.env.now
        while True:
            endpoint = member.try_acquire()
            if endpoint is not None:
                self.time_spent_polling += member.env.now - started
                return endpoint  # statan: ignore[PROC003] -- process value
            retry += 1
            if retry * self.jk_sleep >= self.cache_acquire_timeout:
                break
            yield member.env.timeout(self.jk_sleep)
        # Final sleep before giving up, as in the pseudo code's last
        # loop iteration.
        yield member.env.timeout(self.jk_sleep)
        self.time_spent_polling += member.env.now - started
        self.timeouts += 1
        return None  # statan: ignore[PROC003] -- process value


class ModifiedGetEndpoint(GetEndpointMechanism):
    """§IV-C remedy: a single immediate probe, no polling.

    "When the load balancer tries to find a free endpoint from the
    candidate, if the candidate cannot respond, the load balancer
    should skip it and move it to busy state instead of continuing to
    check it for a very short period."
    """

    name = "modified"

    def __init__(self) -> None:
        self.immediate_failures = 0

    def get_endpoint(self, member: BalancerMember):
        endpoint = member.try_acquire()
        if endpoint is None:
            self.immediate_failures += 1
            return None
        return endpoint
        # Unreachable: its presence alone makes this a generator, so the
        # mechanism interface stays uniform.
        yield  # pragma: no cover - generator trick; statan: ignore[PROC001]


class BreakerGuardedMechanism(GetEndpointMechanism):
    """Feed endpoint-acquisition outcomes into the member's breaker.

    Installed by ``LoadBalancer.install_breakers`` around the paper's
    mechanisms: every acquisition attempt against a member with a
    breaker reports its verdict (an endpoint is proof of life, a
    ``None`` is a failure), which is what drives the breaker's
    closed -> open escalation.  Admission gating itself happens on the
    dispatch path *before* the mechanism runs, so an open breaker never
    ties up a worker inside ``get_endpoint`` at all.
    """

    def __init__(self, inner: GetEndpointMechanism) -> None:
        self.inner = inner
        self.name = inner.name + "+breaker"

    def get_endpoint(self, member: BalancerMember):
        endpoint = yield from self.inner.get_endpoint(member)
        breaker = member.breaker
        if breaker is not None:
            if endpoint is None:
                breaker.record_failure()
            else:
                breaker.record_success()
        return endpoint  # statan: ignore[PROC003] -- process value


#: Mechanism registry for scenario lookups.
MECHANISMS: dict[str, type] = {
    OriginalGetEndpoint.name: OriginalGetEndpoint,
    ModifiedGetEndpoint.name: ModifiedGetEndpoint,
}


def make_mechanism(name: str) -> GetEndpointMechanism:
    """Instantiate a mechanism by registry name."""
    try:
        return MECHANISMS[name]()
    except KeyError:
        raise ConfigurationError("unknown mechanism: " + name) from None
