"""The paper's contribution: mod_jk's load balancer, its failure modes
under millibottlenecks, and the two remedies.

* Policies (upper scheduler level): ``total_request``,
  ``total_traffic`` — cumulative, unstable under millibottlenecks —
  and ``current_load``, the policy-level remedy, plus a zoo of extra
  policies for ablations.
* Mechanism (lower level): ``OriginalGetEndpoint`` (Algorithm 1's
  poll-with-sleep) and ``ModifiedGetEndpoint``, the mechanism-level
  remedy that treats an unresponsive candidate as Busy immediately.
* The 3-state member lifecycle, per-backend endpoint pools, and the
  per-Apache :class:`LoadBalancer` that ties it all together.
"""

from repro.core.balancer import BalancerConfig, DirectDispatcher, LoadBalancer
from repro.core.mechanism import (
    DEFAULT_CACHE_ACQUIRE_TIMEOUT,
    DEFAULT_JK_SLEEP,
    MECHANISMS,
    GetEndpointMechanism,
    ModifiedGetEndpoint,
    OriginalGetEndpoint,
    make_mechanism,
)
from repro.core.member import DEFAULT_POOL_SIZE, BalancerMember, Endpoint
from repro.core.policies import (
    LB_MULT,
    POLICIES,
    CurrentLoadPolicy,
    EwmaLatencyPolicy,
    JoinIdleQueuePolicy,
    Policy,
    PrequalPolicy,
    PrequalProbeConfig,
    RandomPolicy,
    RoundRobinPolicy,
    StickyConfig,
    StickySessionPolicy,
    TotalRequestPolicy,
    TotalTrafficPolicy,
    TwoChoicesPolicy,
    WeightedLeastConnPolicy,
    make_policy,
)
from repro.core.remedies import (
    BUNDLES,
    MODERN_BUNDLES,
    TABLE1_BUNDLES,
    RemedyBundle,
    get_bundle,
)
from repro.core.states import MemberState, StateConfig

__all__ = [
    "LoadBalancer",
    "DirectDispatcher",
    "BalancerConfig",
    "BalancerMember",
    "Endpoint",
    "MemberState",
    "StateConfig",
    "Policy",
    "TotalRequestPolicy",
    "TotalTrafficPolicy",
    "CurrentLoadPolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "TwoChoicesPolicy",
    "EwmaLatencyPolicy",
    "PrequalPolicy",
    "PrequalProbeConfig",
    "JoinIdleQueuePolicy",
    "WeightedLeastConnPolicy",
    "StickyConfig",
    "StickySessionPolicy",
    "POLICIES",
    "make_policy",
    "LB_MULT",
    "GetEndpointMechanism",
    "OriginalGetEndpoint",
    "ModifiedGetEndpoint",
    "MECHANISMS",
    "make_mechanism",
    "DEFAULT_CACHE_ACQUIRE_TIMEOUT",
    "DEFAULT_JK_SLEEP",
    "DEFAULT_POOL_SIZE",
    "RemedyBundle",
    "TABLE1_BUNDLES",
    "MODERN_BUNDLES",
    "BUNDLES",
    "get_bundle",
]
