"""The 3-state worker lifecycle of the Apache load balancer (§IV-A).

mod_jk assumes a backend is in one of three states:

* **Available** — can take requests;
* **Busy** — temporarily failed to hand out an endpoint;
* **Error** — unreachable, excluded from scheduling.

The paper's §IV shows this model breaks under millibottlenecks: a
stalled server stays *Available* while the mechanism polls it.  The
state machine here implements both the classic transitions and the
timing knobs (recheck/recovery) that govern them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class MemberState(enum.Enum):
    """State of one backend as seen by one load balancer."""

    AVAILABLE = "available"
    BUSY = "busy"
    ERROR = "error"


@dataclass(frozen=True)
class StateConfig:
    """Timing knobs of the 3-state machine.

    Parameters
    ----------
    busy_recheck:
        Seconds after which a Busy member becomes eligible for another
        endpoint probe.
    max_busy_retries:
        Consecutive failed probes before a Busy member is declared
        Error (§IV-A: "if the retries fail after a specified number").
    error_recovery:
        Seconds an Error member is excluded before being probed again
        (mod_jk's ``recover_time``, scaled down for simulation runs).
    """

    busy_recheck: float = 0.1
    max_busy_retries: int = 10
    error_recovery: float = 10.0

    def __post_init__(self) -> None:
        if self.busy_recheck <= 0:
            raise ConfigurationError("busy_recheck must be positive")
        if self.max_busy_retries < 1:
            raise ConfigurationError("max_busy_retries must be >= 1")
        if self.error_recovery <= 0:
            raise ConfigurationError("error_recovery must be positive")
