"""Load balancing policies — the upper level of mod_jk's scheduler.

The paper studies two stock policies and proposes one remedy:

* :class:`TotalRequestPolicy` (Algorithm 2) — rank by accumulated
  request count.  **Unstable** under millibottlenecks (§V-A).
* :class:`TotalTrafficPolicy` (Algorithm 3) — rank by accumulated
  message bytes.  Same instability.
* :class:`CurrentLoadPolicy` (Algorithm 4) — rank by requests
  currently in flight; the paper's policy-level remedy (§V-B).  This
  is mod_jk's "busyness" method.

Additional policies (round robin, random, power-of-two-choices, EWMA
latency) are provided for the ablation benchmarks: they let users
check which *family* of policies — cumulative vs. instantaneous —
inherits the instability.

A policy never picks members itself beyond ranking: eligibility (the
3-state machine) is the balancer's job; the policy's
:meth:`Policy.select` only orders the eligible candidates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.member import BalancerMember
from repro.errors import ConfigurationError
from repro.workload.request import Request

#: mod_jk's lb_value quantum.
LB_MULT = 1.0


class Policy:
    """Base class for ranking policies."""

    #: Registry name (used by scenario/remedy lookups).
    name = "abstract"
    #: Whether the policy ranks by *cumulative* history (the property
    #: the paper blames for the instability).
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator) -> BalancerMember:
        """Pick the best candidate: lowest lb_value, ties by index."""
        return min(eligible, key=lambda member: (member.lb_value,
                                                 member.index))

    def on_pick(self, member: BalancerMember, request: Request) -> None:
        """Hook: the member was selected (before endpoint acquisition).

        mod_jk updates *busyness* here — before ``get_endpoint`` — so a
        request stuck polling a stalled candidate still counts against
        that candidate.  That ordering is what makes ``current_load``
        robust to the mechanism limitation (§V-B).
        """

    def on_pick_abandoned(self, member: BalancerMember,
                          request: Request) -> None:
        """Hook: endpoint acquisition failed; the pick is withdrawn."""

    def on_dispatch(self, member: BalancerMember, request: Request) -> None:
        """Hook: the request was handed an endpoint and sent."""

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        """Hook: the response for the request came back."""

    def __repr__(self) -> str:
        return "<Policy {}>".format(self.name)


class TotalRequestPolicy(Policy):
    """Algorithm 2: accumulate one lb_mult per dispatched request.

    The lb_value increments only *after* ``get_endpoint`` succeeds, so
    a stalled member's value freezes at the lowest rank — and the
    balancer funnels every new request into it (Fig. 10).
    """

    name = "total_request"
    cumulative = True

    def on_dispatch(self, member: BalancerMember, request: Request) -> None:
        member.lb_value = member.lb_value + LB_MULT


class TotalTrafficPolicy(Policy):
    """Algorithm 3: accumulate request+response bytes at completion.

    Byte counts are only known when the response returns, hence the
    update sits after "Receive the response" in the paper's pseudo
    code.  A stalled member completes nothing, freezes at the lowest
    rank, and attracts all traffic (Fig. 11).
    """

    name = "total_traffic"
    cumulative = True

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        member.lb_value = member.lb_value + request.traffic_bytes * LB_MULT


class CurrentLoadPolicy(Policy):
    """Algorithm 4: rank by requests currently assigned to the member.

    +1 when the member is *picked*, -1 at completion (clamped at zero
    exactly as the paper's pseudo code does).  Counting from pick time
    — mod_jk increments busyness before calling ``get_endpoint`` — is
    what the paper means by "even though Apache could be stuck in
    calling get_endpoint ... the lb_value of the candidate with the
    millibottleneck remains the highest": workers stuck polling a
    stalled member still weigh it down, so new requests go elsewhere.
    A stalled member keeps its in-flight requests, so its rank rises
    and healthy members win — the policy-level remedy.
    """

    name = "current_load"
    cumulative = False

    def on_pick(self, member: BalancerMember, request: Request) -> None:
        member.lb_value = member.lb_value + LB_MULT

    def on_pick_abandoned(self, member: BalancerMember,
                          request: Request) -> None:
        self._decrement(member)

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        self._decrement(member)

    @staticmethod
    def _decrement(member: BalancerMember) -> None:
        if member.lb_value >= LB_MULT:
            member.lb_value = member.lb_value - LB_MULT
        else:
            member.lb_value = 0.0


class RoundRobinPolicy(Policy):
    """Cycle through eligible members regardless of load."""

    name = "round_robin"
    cumulative = False

    def __init__(self) -> None:
        self._next = 0

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator) -> BalancerMember:
        # Advance a global cursor over member indexes; pick the first
        # eligible member at or after the cursor.
        ordered = sorted(eligible, key=lambda member: member.index)
        for member in ordered:
            if member.index >= self._next:
                self._next = member.index + 1
                return member
        self._next = ordered[0].index + 1
        return ordered[0]


class RandomPolicy(Policy):
    """Uniformly random choice among eligible members."""

    name = "random"
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator) -> BalancerMember:
        return eligible[int(rng.integers(len(eligible)))]


class TwoChoicesPolicy(Policy):
    """Power of two choices: sample two, take the one with fewer in flight.

    A classic randomized policy that, like current_load, reacts to
    instantaneous state — included to show the remedy generalises
    beyond mod_jk's specific busyness counter.
    """

    name = "two_choices"
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator) -> BalancerMember:
        if len(eligible) == 1:
            return eligible[0]
        first, second = rng.choice(len(eligible), size=2, replace=False)
        a, b = eligible[int(first)], eligible[int(second)]
        return a if (a.inflight, a.index) <= (b.inflight, b.index) else b


class PowerOfDPolicy(Policy):
    """JSQ(d): sample ``d`` members uniformly, take the least loaded.

    The mean-field generalisation of :class:`TwoChoicesPolicy`, and the
    policy the large-N axis runs on: selection cost is O(d) regardless
    of the member count, where every full-scan policy (``min`` over
    eligible) pays O(N) per request — the per-replica scan cliff that
    dominates once tiers reach hundreds of replicas.  Sampling is with
    replacement, matching the asymptotic model whose waiting-time
    prediction ``benchmarks/test_largeN_meanfield.py`` checks.
    """

    name = "jsq_d"
    cumulative = False

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ConfigurationError("d must be >= 1")
        self.d = d

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator) -> BalancerMember:
        n = len(eligible)
        if n <= self.d:
            return min(eligible, key=lambda m: (m.inflight, m.index))
        best = eligible[int(rng.integers(n))]
        for _ in range(self.d - 1):
            other = eligible[int(rng.integers(n))]
            if (other.inflight, other.index) < (best.inflight, best.index):
                best = other
        return best


class EwmaLatencyPolicy(Policy):
    """Rank by an exponentially weighted moving average of response time.

    A "recent utilisation changes" policy in the spirit of the paper's
    §I remedy sketch: history decays, so a millibottleneck's imprint
    fades within a few completions instead of persisting forever.
    """

    name = "ewma_latency"
    cumulative = False

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.alpha = alpha

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator) -> BalancerMember:
        def key(member: BalancerMember):
            ewma = (member.ewma_response_time
                    if member.ewma_response_time is not None else 0.0)
            # Penalise members with many requests in flight so the
            # policy does not herd onto one historically fast member.
            return (ewma * (1 + member.inflight), member.index)
        return min(eligible, key=key)

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        if request.dispatched_at is None:
            return
        observed = member.env.now - request.dispatched_at
        if member.ewma_response_time is None:
            member.ewma_response_time = observed
        else:
            member.ewma_response_time = (
                self.alpha * observed
                + (1 - self.alpha) * member.ewma_response_time)


#: Policy registry for scenario lookups.
POLICIES: dict[str, type] = {
    cls.name: cls for cls in [
        TotalRequestPolicy,
        TotalTrafficPolicy,
        CurrentLoadPolicy,
        RoundRobinPolicy,
        RandomPolicy,
        TwoChoicesPolicy,
        PowerOfDPolicy,
        EwmaLatencyPolicy,
    ]
}


def make_policy(name: str) -> Policy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError("unknown policy: " + name) from None
