"""Load balancing policies — the upper level of mod_jk's scheduler.

The paper studies two stock policies and proposes one remedy:

* :class:`TotalRequestPolicy` (Algorithm 2) — rank by accumulated
  request count.  **Unstable** under millibottlenecks (§V-A).
* :class:`TotalTrafficPolicy` (Algorithm 3) — rank by accumulated
  message bytes.  Same instability.
* :class:`CurrentLoadPolicy` (Algorithm 4) — rank by requests
  currently in flight; the paper's policy-level remedy (§V-B).  This
  is mod_jk's "busyness" method.

Additional policies (round robin, random, power-of-two-choices, EWMA
latency) are provided for the ablation benchmarks: they let users
check which *family* of policies — cumulative vs. instantaneous —
inherits the instability.

The modern-policy zoo asks whether post-mod_jk designs escape the
millibottleneck trap the paper documents:

* :class:`PrequalPolicy` — Prequal's power-of-d *probing*: an async
  probe pool per balancer samples a member subset every few tens of
  milliseconds, records requests-in-flight (RIF) and latency, and
  ranks hot/cold lexicographically (PAPERS.md: "Load is not what you
  should balance").  Stale probes are evicted, so a stalled member's
  last good report ages out instead of freezing at the best rank.
* :class:`JoinIdleQueuePolicy` — JIQ: an idle queue fed by completion
  events gives O(1) picks while any member is idle, falling back to
  JSQ(d) sampling otherwise.
* :class:`WeightedLeastConnPolicy` — HAProxy-style static weights over
  instantaneous connection counts.
* :class:`StickySessionPolicy` — session-key affinity with failover
  re-pinning and a recorded stickiness-violation count (PAPERS.md:
  delay vs. stickiness-violation trade-offs).

A policy never picks members itself beyond ranking: eligibility (the
3-state machine) is the balancer's job; the policy's
:meth:`Policy.select` only orders the eligible candidates.  Policies
that need more than the eligible list plug into the balancer through
the probe/affinity API: :meth:`Policy.attach` (called once per
balancer; the only place a policy may start processes),
:meth:`Policy.configure` (spec-driven probe/affinity tuning), and the
membership hooks (:meth:`Policy.on_member_state`,
:meth:`Policy.on_member_added`, :meth:`Policy.on_member_removed`).
Classic policies implement all of these as no-ops, so an unconfigured
policy schedules **zero events** — the golden traces pin that.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.member import BalancerMember
from repro.core.states import MemberState
from repro.errors import ConfigurationError
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.balancer import LoadBalancer

#: mod_jk's lb_value quantum.
LB_MULT = 1.0


class Policy:
    """Base class for ranking policies."""

    #: Registry name (used by scenario/remedy lookups).
    name = "abstract"
    #: Whether the policy ranks by *cumulative* history (the property
    #: the paper blames for the instability).
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        """Pick the best candidate: lowest lb_value, ties by index.

        ``request`` is the request about to be dispatched; only
        affinity policies read it (classic ranking ignores it).
        """
        return min(eligible, key=lambda member: (member.lb_value,
                                                 member.index))

    # -- probe/affinity API ------------------------------------------------
    def attach(self, balancer: "LoadBalancer") -> None:
        """Hook: the policy now serves ``balancer``.

        Called exactly once, at the end of the balancer's construction.
        This is the only place a policy may start simulation processes
        (probe pools); the default is a no-op so classic policies stay
        zero-event and golden traces are untouched.
        """

    def configure(self, probe=None, affinity=None) -> None:
        """Apply spec-declared probe/affinity configuration.

        The base policy accepts neither: passing a non-``None`` config
        to a policy that cannot consume it is a
        :class:`~repro.errors.ConfigurationError`, so a topology spec
        cannot silently attach probe tuning to, say, ``total_request``.
        """
        if probe is not None:
            raise ConfigurationError(
                "policy {!r} takes no probe configuration".format(
                    self.name))
        if affinity is not None:
            raise ConfigurationError(
                "policy {!r} takes no affinity configuration".format(
                    self.name))

    def on_member_state(self, member: BalancerMember) -> None:
        """Hook: ``member`` went through a real 3-state transition."""

    def on_member_added(self, member: BalancerMember) -> None:
        """Hook: ``member`` joined the balancer's rotation."""

    def on_member_removed(self, member: BalancerMember) -> None:
        """Hook: ``member`` was retired from the rotation."""

    def on_pick(self, member: BalancerMember, request: Request) -> None:
        """Hook: the member was selected (before endpoint acquisition).

        mod_jk updates *busyness* here — before ``get_endpoint`` — so a
        request stuck polling a stalled candidate still counts against
        that candidate.  That ordering is what makes ``current_load``
        robust to the mechanism limitation (§V-B).
        """

    def on_pick_abandoned(self, member: BalancerMember,
                          request: Request) -> None:
        """Hook: endpoint acquisition failed; the pick is withdrawn."""

    def on_dispatch(self, member: BalancerMember, request: Request) -> None:
        """Hook: the request was handed an endpoint and sent."""

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        """Hook: the response for the request came back."""

    def __repr__(self) -> str:
        return "<Policy {}>".format(self.name)


class TotalRequestPolicy(Policy):
    """Algorithm 2: accumulate one lb_mult per dispatched request.

    The lb_value increments only *after* ``get_endpoint`` succeeds, so
    a stalled member's value freezes at the lowest rank — and the
    balancer funnels every new request into it (Fig. 10).
    """

    name = "total_request"
    cumulative = True

    def on_dispatch(self, member: BalancerMember, request: Request) -> None:
        member.lb_value = member.lb_value + LB_MULT


class TotalTrafficPolicy(Policy):
    """Algorithm 3: accumulate request+response bytes at completion.

    Byte counts are only known when the response returns, hence the
    update sits after "Receive the response" in the paper's pseudo
    code.  A stalled member completes nothing, freezes at the lowest
    rank, and attracts all traffic (Fig. 11).
    """

    name = "total_traffic"
    cumulative = True

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        member.lb_value = member.lb_value + request.traffic_bytes * LB_MULT


class CurrentLoadPolicy(Policy):
    """Algorithm 4: rank by requests currently assigned to the member.

    +1 when the member is *picked*, -1 at completion (clamped at zero
    exactly as the paper's pseudo code does).  Counting from pick time
    — mod_jk increments busyness before calling ``get_endpoint`` — is
    what the paper means by "even though Apache could be stuck in
    calling get_endpoint ... the lb_value of the candidate with the
    millibottleneck remains the highest": workers stuck polling a
    stalled member still weigh it down, so new requests go elsewhere.
    A stalled member keeps its in-flight requests, so its rank rises
    and healthy members win — the policy-level remedy.
    """

    name = "current_load"
    cumulative = False

    def on_pick(self, member: BalancerMember, request: Request) -> None:
        member.lb_value = member.lb_value + LB_MULT

    def on_pick_abandoned(self, member: BalancerMember,
                          request: Request) -> None:
        self._decrement(member)

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        self._decrement(member)

    @staticmethod
    def _decrement(member: BalancerMember) -> None:
        if member.lb_value >= LB_MULT:
            member.lb_value = member.lb_value - LB_MULT
        else:
            member.lb_value = 0.0


class RoundRobinPolicy(Policy):
    """Cycle through eligible members regardless of load.

    Implemented as least-recently-served rather than a cursor over
    member indexes: a cursor advances past members that were ineligible
    at pick time, and when a member's eligibility windows keep missing
    the cursor position (a recovering Busy member whose recheck
    instants align with other members' turns), the cursor skew starves
    it permanently.  Ranking by last-served tick gives the recovered
    member the very next pick it is eligible for, and reduces to the
    classic cycle when everyone is eligible.
    """

    name = "round_robin"
    cumulative = False

    def __init__(self) -> None:
        self._clock = 0
        self._last_served: dict[int, int] = {}

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        member = min(eligible, key=lambda m: (
            self._last_served.get(m.index, -1), m.index))
        self._clock += 1
        self._last_served[member.index] = self._clock
        return member

    def on_member_removed(self, member: BalancerMember) -> None:
        self._last_served.pop(member.index, None)


class RandomPolicy(Policy):
    """Uniformly random choice among eligible members."""

    name = "random"
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        return eligible[int(rng.integers(len(eligible)))]


class TwoChoicesPolicy(Policy):
    """Power of two choices: sample two, take the one with fewer in flight.

    A classic randomized policy that, like current_load, reacts to
    instantaneous state — included to show the remedy generalises
    beyond mod_jk's specific busyness counter.
    """

    name = "two_choices"
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        if len(eligible) == 1:
            return eligible[0]
        first, second = rng.choice(len(eligible), size=2, replace=False)
        a, b = eligible[int(first)], eligible[int(second)]
        return a if (a.inflight, a.index) <= (b.inflight, b.index) else b


class PowerOfDPolicy(Policy):
    """JSQ(d): sample ``d`` members uniformly, take the least loaded.

    The mean-field generalisation of :class:`TwoChoicesPolicy`, and the
    policy the large-N axis runs on: selection cost is O(d) regardless
    of the member count, where every full-scan policy (``min`` over
    eligible) pays O(N) per request — the per-replica scan cliff that
    dominates once tiers reach hundreds of replicas.  Sampling is with
    replacement, matching the asymptotic model whose waiting-time
    prediction ``benchmarks/test_largeN_meanfield.py`` checks.
    """

    name = "jsq_d"
    cumulative = False

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ConfigurationError("d must be >= 1")
        self.d = d

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        n = len(eligible)
        if n <= self.d:
            return min(eligible, key=lambda m: (m.inflight, m.index))
        best = eligible[int(rng.integers(n))]
        for _ in range(self.d - 1):
            other = eligible[int(rng.integers(n))]
            if (other.inflight, other.index) < (best.inflight, best.index):
                best = other
        return best


class EwmaLatencyPolicy(Policy):
    """Rank by an exponentially weighted moving average of response time.

    A "recent utilisation changes" policy in the spirit of the paper's
    §I remedy sketch: history decays, so a millibottleneck's imprint
    fades within a few completions instead of persisting forever.
    """

    name = "ewma_latency"
    cumulative = False

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.alpha = alpha

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        def key(member: BalancerMember):
            ewma = (member.ewma_response_time
                    if member.ewma_response_time is not None else 0.0)
            # Penalise members with many requests in flight so the
            # policy does not herd onto one historically fast member.
            return (ewma * (1 + member.inflight), member.index)
        return min(eligible, key=key)

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        if request.dispatched_at is None:
            return
        observed = member.env.now - request.dispatched_at
        if member.ewma_response_time is None:
            member.ewma_response_time = observed
        else:
            member.ewma_response_time = (
                self.alpha * observed
                + (1 - self.alpha) * member.ewma_response_time)


# -- the modern-policy zoo ---------------------------------------------------

@dataclass(frozen=True)
class PrequalProbeConfig:
    """Tuning knobs of Prequal's asynchronous probe pool.

    Every ``interval`` seconds the pool probes ``d`` members sampled
    uniformly (with replacement) from the balancer's rotation; each
    successful probe records the backend's requests-in-flight and the
    policy's latency estimate for it.  Results older than ``staleness``
    are evicted — a stalled member stops answering probes, its last
    good report ages out, and it drops off the candidate pool instead
    of freezing at the best rank (the cumulative-policy trap).  At most
    ``pool`` results are retained; ``hot_quantile`` splits the pool
    into hot (RIF above the quantile) and cold members, and
    ``latency_alpha`` is the EWMA weight of the latency estimate.
    """

    interval: float = 0.05
    d: int = 2
    staleness: float = 0.5
    hot_quantile: float = 0.75
    pool: int = 16
    latency_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("probe interval must be positive")
        if self.d < 1:
            raise ConfigurationError("probe d must be >= 1")
        if self.staleness <= 0:
            raise ConfigurationError("probe staleness must be positive")
        if not 0.0 <= self.hot_quantile <= 1.0:
            raise ConfigurationError("hot_quantile must be in [0, 1]")
        if self.pool < 1:
            raise ConfigurationError("probe pool must be >= 1")
        if not 0 < self.latency_alpha <= 1:
            raise ConfigurationError("latency_alpha must be in (0, 1]")


def _probe_config(probe) -> PrequalProbeConfig:
    if isinstance(probe, PrequalProbeConfig):
        return probe
    if isinstance(probe, dict):
        try:
            return PrequalProbeConfig(**probe)
        except TypeError as err:
            raise ConfigurationError(
                "bad probe configuration: {}".format(err)) from None
    raise ConfigurationError(
        "probe configuration must be a PrequalProbeConfig or a "
        "mapping, got {!r}".format(probe))


class PrequalPolicy(Policy):
    """Prequal: probed-RIF/latency ranking with hot/cold ordering.

    "Load is not what you should balance": instead of ranking by a
    counter the balancer maintains (the §V families), rank by what the
    backends *report* — an async probe pool keeps a bounded set of
    fresh (requests-in-flight, latency) observations, and selection is
    lexicographic: cold members (probed RIF at or below the pool's
    ``hot_quantile``) come first, ordered by probed latency; hot
    members follow, ordered by probed RIF.  Millibottleneck behaviour
    is the point: a stalled backend fails its probes, its entry is
    evicted, and within ``staleness`` seconds it is out of the
    candidate pool entirely — no funnel, no sacrificial requests.

    Unattached (or before any probe lands) the policy degrades to
    JSQ(d) sampling over instantaneous in-flight counts, which keeps
    it usable standalone and schedules no events.
    """

    name = "prequal"
    cumulative = False
    #: Synthetic trace-id allocator for probe span trees (negative ids
    #: keep them disjoint from real request ids).
    _trace_serial = 0

    def __init__(self, config: Optional[PrequalProbeConfig] = None) -> None:
        self.config = config or PrequalProbeConfig()
        self._balancer: Optional["LoadBalancer"] = None
        #: member index -> (probe time, probed RIF, probed latency).
        self._probes: dict[int, tuple[float, int, float]] = {}
        #: member index -> completion-fed latency EWMA (what a probe
        #: snapshots as the member's reported latency).
        self._ewma: dict[int, float] = {}
        self.probes_sent = 0
        self.probe_failures = 0
        self._trace_id: Optional[int] = None

    def configure(self, probe=None, affinity=None) -> None:
        if affinity is not None:
            raise ConfigurationError(
                "policy 'prequal' takes no affinity configuration")
        if probe is not None:
            if self._balancer is not None:
                raise ConfigurationError(
                    "configure probes before the policy is attached")
            self.config = _probe_config(probe)

    def attach(self, balancer: "LoadBalancer") -> None:
        self._balancer = balancer
        balancer.env.process(self._probe_pool(balancer))

    # -- the probe pool ----------------------------------------------------
    def _probe_pool(self, balancer: "LoadBalancer"):
        """Process: periodically probe ``d`` sampled members."""
        env, config = balancer.env, self.config
        while True:
            yield env.timeout(config.interval)
            members = balancer.members
            n = len(members)
            for _ in range(min(config.d, n)):
                target = members[int(balancer._rng.integers(n))]
                yield from self._probe_one(env, balancer, target)

    def _probe_one(self, env, balancer, target: BalancerMember):
        tracer = env.tracer
        span = None
        if tracer is not None:
            if self._trace_id is None:
                PrequalPolicy._trace_serial -= 1
                self._trace_id = PrequalPolicy._trace_serial
                tracer.begin(self._trace_id, probe_pool=balancer.name)
            span = tracer.start(self._trace_id, "prequal.probe",
                                member=target.name)
        self.probes_sent += 1
        yield target.link.delay()
        if target.server.responsive:
            rif = target.server.in_server
            yield target.link.delay()
            self.record_probe(target, rif, at=env.now)
            if tracer is not None:
                tracer.finish(span, ok=True, rif=rif)
        else:
            # No answer: whatever we knew about this member is wrong
            # now — evict instead of letting a pre-stall report coast
            # at the best rank until it ages out.
            self.probe_failures += 1
            self._probes.pop(target.index, None)
            if tracer is not None:
                tracer.finish(span, ok=False)

    def record_probe(self, member: BalancerMember, rif: int,
                     at: float, latency: Optional[float] = None) -> None:
        """Record one probe result (public for conformance tests)."""
        if latency is None:
            latency = self._ewma.get(member.index, 0.0)
        self._probes[member.index] = (at, int(rif), latency)
        if len(self._probes) > self.config.pool:
            oldest = min(self._probes, key=lambda i: self._probes[i][0])
            del self._probes[oldest]

    # -- ranking -----------------------------------------------------------
    def _fresh(self, eligible: Sequence[BalancerMember],
               now: float) -> list[tuple[BalancerMember, int, float]]:
        horizon = now - self.config.staleness
        fresh = []
        for member in eligible:
            entry = self._probes.get(member.index)
            if entry is not None and entry[0] >= horizon:
                fresh.append((member, entry[1], entry[2]))
        return fresh

    def rank_key(self, member: BalancerMember, rif: int, latency: float,
                 threshold: int) -> tuple:
        """The lexicographic hot/cold rank (lower is better).

        Cold members (``rif <= threshold``) sort before any hot member;
        cold order is by probed latency, hot order by probed RIF, and
        member index breaks every tie — a total order.
        """
        if rif > threshold:
            return (1, rif, latency, member.index)
        return (0, latency, rif, member.index)

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        now = (self._balancer.env.now if self._balancer is not None
               else eligible[0].env.now)
        entries = self._fresh(eligible, now)
        if not entries:
            return self._sample(eligible, rng)
        rifs = sorted(rif for _, rif, _ in entries)
        threshold = rifs[int(self.config.hot_quantile * (len(rifs) - 1))]
        best = min(entries, key=lambda entry: self.rank_key(
            entry[0], entry[1], entry[2], threshold))
        return best[0]

    def _sample(self, eligible: Sequence[BalancerMember],
                rng: np.random.Generator) -> BalancerMember:
        n = len(eligible)
        if n <= self.config.d:
            return min(eligible, key=lambda m: (m.inflight, m.index))
        best = eligible[int(rng.integers(n))]
        for _ in range(self.config.d - 1):
            other = eligible[int(rng.integers(n))]
            if (other.inflight, other.index) < (best.inflight, best.index):
                best = other
        return best

    # -- lifecycle hooks ---------------------------------------------------
    def on_complete(self, member: BalancerMember, request: Request) -> None:
        if request.dispatched_at is None:
            return
        observed = member.env.now - request.dispatched_at
        prior = self._ewma.get(member.index)
        alpha = self.config.latency_alpha
        self._ewma[member.index] = (
            observed if prior is None
            else alpha * observed + (1 - alpha) * prior)

    def on_member_removed(self, member: BalancerMember) -> None:
        self._probes.pop(member.index, None)
        self._ewma.pop(member.index, None)


class JoinIdleQueuePolicy(Policy):
    """JIQ: an idle queue gives O(1) picks while any member is idle.

    Completions (and recoveries) that leave a member with zero requests
    in flight enqueue it; a pick dequeues.  While the queue has a valid
    head, selection costs O(1) regardless of member count — the
    large-N answer to the full-scan policies — and a millibottlenecked
    member simply stops appearing (it never drains to idle during a
    stall).  With no idle member the policy falls back to JSQ(d)
    sampling.
    """

    name = "jiq"
    cumulative = False

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ConfigurationError("d must be >= 1")
        self.d = d
        self._balancer: Optional["LoadBalancer"] = None
        self._idle: deque[BalancerMember] = deque()
        self._idle_set: set[int] = set()

    def attach(self, balancer: "LoadBalancer") -> None:
        self._balancer = balancer
        for member in balancer.members:
            self.on_member_added(member)

    def _enqueue(self, member: BalancerMember) -> None:
        if (member.index not in self._idle_set
                and member.inflight == 0
                and member.state is MemberState.AVAILABLE):
            self._idle_set.add(member.index)
            self._idle.append(member)

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        member = self._pop_idle(eligible)
        if member is not None:
            return member
        return self._sample(eligible, rng)

    def _pop_idle(self,
                  eligible: Sequence[BalancerMember]
                  ) -> Optional[BalancerMember]:
        idle, idle_set = self._idle, self._idle_set
        # On the balancer's all-available fast path ``eligible`` is the
        # full member list, so queue membership implies eligibility and
        # the containment scan (the O(N) the queue exists to avoid) is
        # skipped.
        full = (self._balancer is not None
                and len(eligible) == len(self._balancer.members))
        requeue: list[BalancerMember] = []
        found = None
        while idle:
            member = idle.popleft()
            if member.index not in idle_set:
                continue  # lazily removed by on_pick
            if (member.inflight > 0
                    or member.state is not MemberState.AVAILABLE):
                idle_set.discard(member.index)
                continue
            if full or member in eligible:
                idle_set.discard(member.index)
                found = member
                break
            requeue.append(member)  # idle but filtered out right now
        for member in reversed(requeue):
            idle.appendleft(member)
        return found

    def _sample(self, eligible: Sequence[BalancerMember],
                rng: np.random.Generator) -> BalancerMember:
        n = len(eligible)
        if n <= self.d:
            return min(eligible, key=lambda m: (m.inflight, m.index))
        best = eligible[int(rng.integers(n))]
        for _ in range(self.d - 1):
            other = eligible[int(rng.integers(n))]
            if (other.inflight, other.index) < (best.inflight, best.index):
                best = other
        return best

    # -- lifecycle hooks ---------------------------------------------------
    def on_pick(self, member: BalancerMember, request: Request) -> None:
        # The member is about to receive a request; lazy-remove it so
        # concurrent workers cannot double-claim the same idle slot.
        self._idle_set.discard(member.index)

    def on_pick_abandoned(self, member: BalancerMember,
                          request: Request) -> None:
        self._enqueue(member)

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        self._enqueue(member)

    def on_member_state(self, member: BalancerMember) -> None:
        if member.state is MemberState.AVAILABLE:
            self._enqueue(member)
        else:
            self._idle_set.discard(member.index)

    def on_member_added(self, member: BalancerMember) -> None:
        self._enqueue(member)

    def on_member_removed(self, member: BalancerMember) -> None:
        self._idle_set.discard(member.index)


class WeightedLeastConnPolicy(Policy):
    """HAProxy-style least connections with static member weights.

    Rank by ``(inflight + 1) / weight``: a weight-2 member absorbs two
    in-flight requests before it looks as loaded as a weight-1 member
    with one.  Weights come from ``TierSpec.weights`` (via the
    balancer); members default to 1.0, in which case this is plain
    least-connections.  Like ``current_load`` it reads instantaneous
    state, so a stalled member's rising in-flight count pushes it down
    the ranking instead of anchoring it at the top.
    """

    name = "weighted_least_conn"
    cumulative = False

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        return min(eligible, key=lambda m: (
            (m.inflight + 1) / m.weight, m.index))


@dataclass(frozen=True)
class StickyConfig:
    """Session-affinity knobs: which policy places unpinned sessions."""

    fallback: str = "current_load"

    def __post_init__(self) -> None:
        if self.fallback == "sticky":
            raise ConfigurationError(
                "sticky cannot fall back to itself")


def _sticky_config(affinity) -> StickyConfig:
    if isinstance(affinity, StickyConfig):
        return affinity
    if isinstance(affinity, dict):
        try:
            return StickyConfig(**affinity)
        except TypeError as err:
            raise ConfigurationError(
                "bad affinity configuration: {}".format(err)) from None
    raise ConfigurationError(
        "affinity configuration must be a StickyConfig or a mapping, "
        "got {!r}".format(affinity))


class StickySessionPolicy(Policy):
    """Session-key affinity with failover re-pinning.

    Every client's first request is placed by the fallback policy and
    pins the client to the chosen member; later requests return to the
    pinned member whenever it is eligible.  When it is not — Busy
    window, Error ejection, retirement — the request *fails over*: the
    fallback places it, the client re-pins to the new member, and
    :attr:`violations` counts the broken promise.  That counter is the
    other side of the affinity trade (delay vs. stickiness violations):
    under millibottlenecks, affinity keeps sending a pinned client into
    its stalled member until the 3-state machine finally blocks it.
    """

    name = "sticky"
    cumulative = False

    def __init__(self, config: Optional[StickyConfig] = None) -> None:
        self.config = config or StickyConfig()
        self._fallback = make_policy(self.config.fallback)
        #: client_id -> pinned member.
        self._pins: dict[int, BalancerMember] = {}
        self.violations = 0

    def configure(self, probe=None, affinity=None) -> None:
        if probe is not None:
            raise ConfigurationError(
                "policy 'sticky' takes no probe configuration")
        if affinity is not None:
            self.config = _sticky_config(affinity)
            self._fallback = make_policy(self.config.fallback)

    def select(self, eligible: Sequence[BalancerMember],
               rng: np.random.Generator,
               request: Optional[Request] = None) -> BalancerMember:
        if request is None:
            return self._fallback.select(eligible, rng)
        pinned = self._pins.get(request.client_id)
        if pinned is not None:
            for member in eligible:
                if member is pinned:
                    return pinned
            # The pinned member is out of rotation (or ineligible this
            # instant): stickiness is violated and the session moves.
            self.violations += 1
        member = self._fallback.select(eligible, rng, request)
        self._pins[request.client_id] = member
        return member

    # -- delegate lifecycle to the placing policy --------------------------
    def attach(self, balancer: "LoadBalancer") -> None:
        self._fallback.attach(balancer)

    def on_pick(self, member: BalancerMember, request: Request) -> None:
        self._fallback.on_pick(member, request)

    def on_pick_abandoned(self, member: BalancerMember,
                          request: Request) -> None:
        self._fallback.on_pick_abandoned(member, request)

    def on_dispatch(self, member: BalancerMember, request: Request) -> None:
        self._fallback.on_dispatch(member, request)

    def on_complete(self, member: BalancerMember, request: Request) -> None:
        self._fallback.on_complete(member, request)

    def on_member_state(self, member: BalancerMember) -> None:
        self._fallback.on_member_state(member)

    def on_member_added(self, member: BalancerMember) -> None:
        self._fallback.on_member_added(member)

    def on_member_removed(self, member: BalancerMember) -> None:
        # Keep stale pins: the next request from a pinned client finds
        # its member gone, records the violation, and re-pins — silent
        # unpinning would undercount exactly the failovers the metric
        # exists to expose.
        self._fallback.on_member_removed(member)


#: Policy registry for scenario lookups.
POLICIES: dict[str, type] = {
    cls.name: cls for cls in [
        TotalRequestPolicy,
        TotalTrafficPolicy,
        CurrentLoadPolicy,
        RoundRobinPolicy,
        RandomPolicy,
        TwoChoicesPolicy,
        PowerOfDPolicy,
        EwmaLatencyPolicy,
        PrequalPolicy,
        JoinIdleQueuePolicy,
        WeightedLeastConnPolicy,
        StickySessionPolicy,
    ]
}


def make_policy(name: str) -> Policy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError("unknown policy: " + name) from None
