"""A backend (Tomcat) as one load balancer sees it.

Every Apache runs its own balancer with its own member records, its own
endpoint (connection) pool per backend, and its own lb_values — the
paper's Figures 6(c)/10(b) are per-Apache views, and all four Apaches
exhibit the same pattern independently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.metrics.timeseries import TimeSeries
from repro.netmodel.sockets import Link
from repro.sim.events import Event
from repro.sim.resources import Request as SlotRequest
from repro.sim.resources import Resource
from repro.core.states import MemberState, StateConfig
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.tiers.tomcat import TomcatServer

#: Table III: WorkerConnectionPoolSize.
DEFAULT_POOL_SIZE = 25


class Endpoint:
    """One granted connection slot to a backend."""

    def __init__(self, member: "BalancerMember", slot: SlotRequest) -> None:
        self.member = member
        self._slot: Optional[SlotRequest] = slot

    def release(self) -> None:
        """Return the connection to the pool (idempotent is an error)."""
        if self._slot is None:
            raise SimulationError("endpoint released twice")
        slot, self._slot = self._slot, None
        self.member._release_slot(slot)

    @property
    def released(self) -> bool:
        return self._slot is None


class BalancerMember:
    """State one balancer keeps about one backend server."""

    def __init__(self, env: "Environment", server: "TomcatServer",
                 index: int,
                 pool_size: int = DEFAULT_POOL_SIZE,
                 state_config: StateConfig | None = None,
                 link: Link | None = None,
                 trace_lb_values: bool = True,
                 preconnect: bool = True) -> None:
        self.env = env
        self.server = server
        self.index = index
        self.state_config = state_config or StateConfig()
        self.link = link or Link(env, name=server.name + ".ajp")
        self.pool = Resource(env, capacity=pool_size)
        #: Endpoints whose TCP connection has been established (they
        #: stay connected across requests, as with AJP keep-alive).
        #: mod_jk maintains persistent connections, so a warmed-up
        #: balancer has every pool slot connected (``preconnect``).
        self._connected = pool_size if preconnect else 0
        self.state = MemberState.AVAILABLE
        self.busy_since: Optional[float] = None
        self.error_since: Optional[float] = None
        self.busy_retries = 0
        #: The policy-maintained scheduling value.
        self._lb_value = 0.0
        #: (time, lb_value) trace for Figs. 10(b)/11(b).
        self.lb_trace: Optional[TimeSeries] = (
            TimeSeries(server.name + ".lb") if trace_lb_values else None)
        #: Dispatch/completion counters.
        self.dispatched = 0
        self.completed = 0
        self.inflight = 0
        #: Static capacity weight (HAProxy-style); read by
        #: :class:`~repro.core.policies.WeightedLeastConnPolicy`.
        self.weight = 1.0
        #: EWMA of observed response times (used by the latency policy).
        self.ewma_response_time: Optional[float] = None
        #: Optional circuit breaker, installed by
        #: :meth:`~repro.core.balancer.LoadBalancer.install_breakers`;
        #: ``None`` (the default) keeps the breaker path dormant.
        self.breaker = None
        #: Called as ``on_state_change(self)`` after every *actual*
        #: 3-state transition (never on no-op re-marks).  The balancer
        #: uses it to maintain its all-available fast path.
        self.on_state_change = None

    @property
    def name(self) -> str:
        return self.server.name

    # -- lb_value -----------------------------------------------------------
    @property
    def lb_value(self) -> float:
        return self._lb_value

    @lb_value.setter
    def lb_value(self, value: float) -> None:
        self._lb_value = value
        if self.lb_trace is not None:
            self.lb_trace.append(self.env.now, value)

    # -- endpoint pool ---------------------------------------------------------
    def try_acquire(self) -> Optional[Endpoint]:
        """One endpoint probe, mirroring Algorithm 1's inner search.

        First try to reuse a *connected* (keep-alive) endpoint: sending
        on an established connection only needs the backend's kernel,
        which keeps buffering even during a millibottleneck — this is
        how a stalled server silently absorbs its first requests.  If
        no connected endpoint is free, "use the first free one": open a
        new connection, which requires the backend's *application* side
        to answer — a frozen (millibottlenecked) server cannot, and
        this is the "candidate cannot respond" of §IV-C.
        """
        if self.server.crashed:
            # A dead process resets even established connections.
            return None
        slot = self.pool.request()
        if not slot.triggered:
            # Every endpoint is in use.
            slot.cancel()
            return None
        if self.pool.count <= self._connected:
            # A previously-established connection was free: reuse it.
            return Endpoint(self, slot)
        # Fresh slot: the connection handshake needs a live backend.
        if not self.server.responsive:
            self.pool.release(slot)
            return None
        self._connected += 1
        return Endpoint(self, slot)

    def _release_slot(self, slot: SlotRequest) -> None:
        self.pool.release(slot)
        # A freed connection is proof of life: a Busy member recovers.
        if self.state is MemberState.BUSY:
            self.mark_available()

    # -- 3-state machine ---------------------------------------------------
    def mark_busy(self) -> None:
        """Record a failed endpoint probe (Available/Busy -> Busy/Error).

        Escalation counts *episodes*, not reporters: during a stall,
        dozens of stuck workers time out within milliseconds of each
        other, but they all observed the same failure.  Only a fresh
        probe that fails after the recheck window counts as another
        retry toward Error — otherwise a single millibottleneck would
        spuriously eject the server for the whole ``error_recovery``
        period.
        """
        if self.state is MemberState.ERROR:
            return
        now = self.env.now
        if self.state is MemberState.BUSY:
            if now - self.busy_since >= self.state_config.busy_recheck:
                self.busy_retries += 1
                self.busy_since = now
                if self.busy_retries > self.state_config.max_busy_retries:
                    self.mark_error()
            return
        self.state = MemberState.BUSY
        self.busy_since = now
        self.busy_retries = 1
        if self.on_state_change is not None:
            self.on_state_change(self)

    def mark_error(self) -> None:
        self.state = MemberState.ERROR
        self.error_since = self.env.now
        if self.on_state_change is not None:
            self.on_state_change(self)

    def mark_available(self) -> None:
        if self.state is MemberState.AVAILABLE:
            # Re-marks happen on every successful acquisition; only an
            # actual transition resets the bookkeeping (and notifies).
            return
        self.state = MemberState.AVAILABLE
        self.busy_since = None
        self.error_since = None
        self.busy_retries = 0
        if self.on_state_change is not None:
            self.on_state_change(self)

    def eligible(self, now: float) -> bool:
        """Whether the selector may pick this member right now."""
        if self.state is MemberState.AVAILABLE:
            return True
        if self.state is MemberState.BUSY:
            return (now - self.busy_since) >= self.state_config.busy_recheck
        return (now - self.error_since) >= self.state_config.error_recovery

    # -- data path ---------------------------------------------------------
    def send(self, request: Request):
        """Process generator: forward ``request`` and await the response."""
        reply: Event = Event(self.env)
        if self.link.profile is None:
            yield self.link.delay()
            self.server.submit(request, reply)
            yield reply
            yield self.link.delay()
        else:
            # Cross-zone hop: pay WAN RTT/loss on both directions.
            yield from self.link.transit(request)
            self.server.submit(request, reply)
            yield reply
            yield from self.link.transit(request)

    def __repr__(self) -> str:
        return "<Member {} {} lb={:.1f} inflight={}>".format(
            self.name, self.state.value, self._lb_value, self.inflight)
