"""Critical-path decomposition: where each request's latency went.

Every span name maps to a named latency *bucket*; a request's
end-to-end response time is attributed to buckets by **self time** —
each span contributes its duration minus the time covered by its
children, so the bucket sums reconstruct the root span's duration
exactly (to float rounding).  This is the per-request version of the
paper's Figure 2-4 argument: a 3.007 s VLRT request decomposes into
~3 s of retransmission backoff plus milliseconds of actual work.

Spans are clipped to their parent's interval before attribution:
ghost work that outlives the client-visible request (an abandoned
attempt still being served, a cancelled hedge attempt winding down)
does not inflate the client-facing decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.spans import RequestTrace, Span

__all__ = ["BUCKET_OF_SPAN", "QUEUE_WAIT_BUCKETS", "VLRT_CAUSE_BUCKETS",
           "CriticalPath", "bucket_for", "decompose", "is_vlrt_cause"]

#: Span name -> latency bucket.  Unknown span names fall into "other".
BUCKET_OF_SPAN: dict[str, str] = {
    "request": "other",
    "tcp.retransmit_wait": "retransmission",
    "apache.queue_wait": "queue_wait.apache",
    "apache.service": "service.apache",
    "balancer.dispatch": "balancer.other",
    "balancer.pick": "balancer.other",
    "balancer.endpoint_wait": "endpoint_wait",
    "balancer.retry_pause": "balancer.backoff",
    "balancer.breaker_pause": "balancer.backoff",
    "balancer.send": "network",
    "tomcat.queue_wait": "queue_wait.tomcat",
    "tomcat.service": "service.tomcat",
    "mysql.pool_wait": "queue_wait.mysql",
    "mysql.service": "service.mysql",
    "hedge.issued": "balancer.other",
    "hedge.win": "balancer.other",
    # Control-plane gates: deliberate backpressure, not a symptom.
    # Explicit entries keep these out of the queue_wait.* suffix rule
    # so VLRT cause attribution never blames the remedy for the wait
    # it intentionally introduces.
    "admission.queue_wait": "controlplane.wait",
    "bulkhead.queue_wait": "controlplane.wait",
    # Balancer-initiated probe traffic (Prequal's async probe pool):
    # measurement overhead, never a VLRT cause — an explicit entry so
    # no suffix rule can ever attribute it as queue wait.
    "prequal.probe": "probe.wait",
    # Geo topologies: WAN propagation is its own bucket so cross-zone
    # RTT is never confused with retransmission backoff — the nested
    # tcp.retransmit_wait spans inside a lossy transit are clipped out
    # into "retransmission" by decompose's child clipping.
    "wan.transit": "wan.transit",
    # Cache-aside miss: the envelope around the downstream call.  Child
    # clipping hands the downstream's own queue/service time to those
    # tiers' buckets; what remains here is pure miss overhead.
    "cache.miss_penalty": "cache.miss_penalty",
}

#: Buckets that are queue wait somewhere in the stack.  The balancer's
#: endpoint wait is a queue in all but name: worker threads queueing on
#: the stalled backend's connection pool (the §IV-B funnel).
QUEUE_WAIT_BUCKETS = frozenset((
    "queue_wait.apache", "queue_wait.tomcat", "queue_wait.mysql",
    "endpoint_wait",
))

#: The paper's two VLRT mechanisms: TCP retransmission after a drop,
#: and queue wait behind a millibottleneck (§III).
VLRT_CAUSE_BUCKETS = frozenset(("retransmission",)) | QUEUE_WAIT_BUCKETS


def bucket_for(name: str) -> str:
    """Latency bucket of one span name.

    Classic span names map through :data:`BUCKET_OF_SPAN`; the tiers of
    a declarative topology (:mod:`repro.cluster.spec`) prefix the same
    span kinds with their own role names, so ``backend.queue_wait`` or
    ``db.pool_wait`` attribute by suffix to ``queue_wait.backend`` /
    ``queue_wait.db`` and so on.  Anything else lands in ``other``.
    """
    bucket = BUCKET_OF_SPAN.get(name)
    if bucket is not None:
        return bucket
    role, dot, kind = name.rpartition(".")
    if dot:
        if kind in ("queue_wait", "pool_wait"):
            return "queue_wait." + role
        if kind == "service":
            return "service." + role
    return "other"


def is_vlrt_cause(bucket: str) -> bool:
    """Whether ``bucket`` is one of the paper's two VLRT mechanisms
    (retransmission backoff, or queue wait at any tier)."""
    return (bucket in VLRT_CAUSE_BUCKETS
            or bucket.startswith("queue_wait."))


@dataclass
class CriticalPath:
    """One request's latency, attributed to named buckets."""

    request_id: int
    total: float
    buckets: dict[str, float] = field(default_factory=dict)

    @property
    def dominant(self) -> str:
        """The bucket that explains the largest share of the latency."""
        if not self.buckets:
            return "other"
        return max(self.buckets, key=lambda key: (self.buckets[key], key))

    def fraction(self, bucket: str) -> float:
        if self.total <= 0.0:
            return 0.0
        return self.buckets.get(bucket, 0.0) / self.total

    def row(self) -> dict[str, float]:
        """Flat dict for tabular export (bucket seconds + total)."""
        row = {"request_id": self.request_id, "total": self.total,
               "dominant": self.dominant}
        row.update(self.buckets)
        return row

    def __repr__(self) -> str:
        return "<CriticalPath #{} {:.3f}s dominant={}>".format(
            self.request_id, self.total, self.dominant)


def decompose(trace: "RequestTrace") -> CriticalPath:
    """Attribute ``trace``'s end-to-end latency to buckets by self time.

    Requires a finalized trace (every span closed).  The invariant the
    trace-structure golden test pins: ``sum(path.buckets.values())``
    equals ``trace.duration`` to float tolerance.
    """
    buckets: dict[str, float] = {}
    root = trace.root
    _accumulate(root, root.start,
                root.start if root.end is None else root.end, buckets)
    return CriticalPath(request_id=trace.request_id,
                        total=root.duration, buckets=buckets)


def _accumulate(span: "Span", lo: float, hi: float,
                buckets: dict[str, float]) -> float:
    """Add ``span``'s self time to its bucket; return its clipped span.

    ``[lo, hi]`` is the parent's effective interval; a child is only
    credited for the part of its life inside it.
    """
    start = span.start if span.start > lo else lo
    end = hi if span.end is None or span.end > hi else span.end
    if end <= start:
        return 0.0
    covered = 0.0
    children = span.children
    if children:
        for child in children:
            covered += _accumulate(child, start, end, buckets)
    self_time = (end - start) - covered
    if self_time < 0.0:
        # Siblings overlapped (concurrent hops); the parent cannot be
        # charged negative time.
        self_time = 0.0
    bucket = bucket_for(span.name)
    buckets[bucket] = buckets.get(bucket, 0.0) + self_time
    return end - start
