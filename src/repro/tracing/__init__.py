"""Per-request span trees and the VLRT critical-path explainer.

The paper's methodology is fine-grained monitoring: VLRT requests only
become explainable when the 50-300 ms window where queue wait, the
stalled Tomcat, the accept-queue overflow and the TCP retransmission
line up is visible.  This package records that window *per request*:

* :class:`~repro.tracing.spans.SpanTracer` — one span tree per
  request, one span per hop, installed on ``Environment.tracer`` and
  zero-cost when absent (it never creates events, so golden traces are
  byte-identical with tracing on or off);
* :func:`~repro.tracing.critical_path.decompose` — attributes each
  request's latency to named buckets (queue wait per tier, service,
  endpoint wait, retransmission backoff) whose sum reconstructs the
  end-to-end response time;
* :func:`~repro.tracing.explain.explain_vlrt` — groups >1 s requests
  by dominant cause and reproduces the paper's 1 s / 2 s / 3 s
  retransmission clustering from span data alone;
* :mod:`~repro.tracing.export` — Chrome trace-event JSON and
  per-request text/JSON reports (``repro-lb trace``).
"""

from __future__ import annotations

from repro.tracing.critical_path import (
    BUCKET_OF_SPAN,
    QUEUE_WAIT_BUCKETS,
    VLRT_CAUSE_BUCKETS,
    CriticalPath,
    bucket_for,
    decompose,
    is_vlrt_cause,
)
from repro.tracing.explain import VlrtExplanation, explain_vlrt
from repro.tracing.export import (
    chrome_trace,
    trace_report,
    trace_to_dict,
    write_chrome_trace,
)
from repro.tracing.spans import RequestTrace, Span, SpanTracer

__all__ = [
    "BUCKET_OF_SPAN",
    "QUEUE_WAIT_BUCKETS",
    "VLRT_CAUSE_BUCKETS",
    "CriticalPath",
    "RequestTrace",
    "Span",
    "SpanTracer",
    "VlrtExplanation",
    "bucket_for",
    "chrome_trace",
    "decompose",
    "explain_vlrt",
    "is_vlrt_cause",
    "trace_report",
    "trace_to_dict",
    "write_chrome_trace",
]
