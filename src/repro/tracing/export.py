"""Trace exporters: Chrome trace-event JSON and per-request reports.

``chrome_trace`` renders traces in the Chrome/Perfetto trace-event
format (load via ``chrome://tracing`` or https://ui.perfetto.dev):
one process per request, one thread row per tier, so a VLRT request's
retransmission gaps and queue waits are visible on a timeline.

``trace_report`` renders one request's span tree as indented text with
its critical-path bucket summary — the "why did this request take
3.007 s" answer, printable from the CLI.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

from repro.tracing.critical_path import decompose

if TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.spans import RequestTrace, Span

__all__ = ["chrome_trace", "write_chrome_trace", "trace_report",
           "trace_to_dict"]

#: Stable thread row per tier prefix, in stack order top to bottom.
_TIER_ROWS = {"request": 0, "tcp": 0, "apache": 1, "balancer": 2,
              "hedge": 2, "tomcat": 3, "mysql": 4}
_TIER_NAMES = {0: "client", 1: "web (apache)", 2: "balancer",
               3: "app (tomcat)", 4: "db (mysql)"}


def _row(span: "Span") -> int:
    return _TIER_ROWS.get(span.name.split(".", 1)[0], 5)


def chrome_trace(traces: Iterable["RequestTrace"]) -> dict:
    """Render traces as a Chrome trace-event JSON object."""
    events = []
    pids = set()
    for trace in traces:
        pid = trace.request_id
        pids.add(pid)
        for span in trace.root.walk():
            end = span.end if span.end is not None else span.start
            event = {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": pid,
                "tid": _row(span),
            }
            if span.meta:
                event["args"] = {key: value
                                 for key, value in span.meta.items()}
            events.append(event)
    for pid in sorted(pids):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0,
                       "args": {"name": "request {}".format(pid)}})
        for tid, label in _TIER_NAMES.items():
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": label}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: Iterable["RequestTrace"],
                       path: str) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(traces), handle)
    return path


def trace_to_dict(trace: "RequestTrace") -> dict:
    """One request's tree + critical path as a JSON-ready dict."""
    def span_dict(span: "Span") -> dict:
        node = {
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "duration_ms": 1000.0 * span.duration,
        }
        if span.meta:
            node["meta"] = dict(span.meta)
        if span.children:
            node["children"] = [span_dict(child)
                                for child in span.children]
        return node

    path = decompose(trace)
    return {
        "request_id": trace.request_id,
        "status": trace.status,
        "duration_ms": 1000.0 * trace.duration,
        "dominant": path.dominant,
        "buckets_ms": {bucket: 1000.0 * seconds
                       for bucket, seconds in sorted(path.buckets.items())},
        "root": span_dict(trace.root),
    }


def trace_report(trace: "RequestTrace") -> str:
    """One request's span tree as indented text with bucket summary."""
    lines = ["request #{}: {:.1f} ms ({})".format(
        trace.request_id, 1000.0 * trace.duration,
        trace.status or "open")]
    for span in trace.root.walk():
        detail = ""
        if span.meta:
            detail = "  " + " ".join(
                "{}={}".format(key, value)
                for key, value in span.meta.items())
        lines.append("  {}{:<28s} {:>10.3f} ms{}".format(
            "  " * span.depth, span.name, 1000.0 * span.duration, detail))
    path = decompose(trace)
    lines.append("  critical path (dominant: {}):".format(path.dominant))
    for bucket, seconds in sorted(path.buckets.items(),
                                  key=lambda item: -item[1]):
        if seconds <= 0.0:
            continue
        lines.append("    {:<20s} {:>10.3f} ms  ({:.1f}%)".format(
            bucket, 1000.0 * seconds, 100.0 * path.fraction(bucket)))
    return "\n".join(lines)
