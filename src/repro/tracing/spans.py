"""Per-request span trees: the fine-grained monitoring the paper calls for.

A :class:`SpanTracer` installed on :attr:`Environment.tracer
<repro.sim.core.Environment.tracer>` records one :class:`RequestTrace`
per request, with one :class:`Span` per hop — client TCP send (and each
retransmission wait), web-tier accept queue, worker service, balancer
decision and endpoint wait, app-tier queue and service, database pool
and service — so "why did *this* request take 3.007 s" is answerable
from the trace alone (the question Figs. 2-4 answer with external
monitors).

The tracer follows the kernel's zero-cost-when-off hook pattern:
``Environment.tracer`` defaults to ``None``, every call site guards
with a single attribute check, and the tracer itself never creates or
schedules events — recording is pure observation, so the event
schedule (and the golden-trace hashes built on it) is byte-identical
with tracing on, off, or absent.

Span parentage is inferred per request: a span opened while another is
open for the same request becomes its child.  The hop structure is
sequential within one request, so this yields properly nested trees;
cross-component waits (a queue wait opened by the producer and closed
by the consumer) go through the *named* span API instead of carrying
the span object across the hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["Span", "RequestTrace", "SpanTracer"]


class Span:
    """One timed hop of one request."""

    __slots__ = ("span_id", "name", "start", "end", "parent", "children",
                 "meta", "trace")

    def __init__(self, span_id: int, name: str, start: float,
                 parent: Optional["Span"] = None,
                 trace: Optional["RequestTrace"] = None) -> None:
        self.span_id = span_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        #: Lazily allocated child list (most spans are leaves, and a
        #: scenario allocates one span per hop per request — the empty
        #: lists were a measurable share of tracing-on overhead).
        self.children: Optional[list[Span]] = None
        #: Lazily allocated annotation dict (most spans carry none).
        self.meta: Optional[dict] = None
        #: Owning trace (lets ``finish`` unwind the open stack in O(1)).
        self.trace = trace

    @property
    def duration(self) -> float:
        """Seconds from start to end (``0.0`` while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def annotate(self, **meta) -> None:
        if self.meta is None:
            self.meta = meta
        else:
            self.meta.update(meta)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in open order."""
        yield self
        children = self.children
        if children:
            for child in children:
                yield from child.walk()

    @property
    def depth(self) -> int:
        depth, span = 0, self.parent
        while span is not None:
            depth, span = depth + 1, span.parent
        return depth

    def __repr__(self) -> str:
        return "<Span #{} {} [{:.6f}, {}]>".format(
            self.span_id, self.name, self.start,
            "open" if self.end is None else format(self.end, ".6f"))


class RequestTrace:
    """The span tree of one request, rooted at its client-visible span."""

    __slots__ = ("request_id", "root", "_stack", "_named")

    def __init__(self, request_id: int, root: Span) -> None:
        self.request_id = request_id
        self.root = root
        #: Open spans, innermost last; the next span opened for this
        #: request becomes a child of the innermost open span.
        self._stack: list[Span] = [root]
        #: Open cross-component spans by name (producer opens,
        #: consumer closes); allocated on first use.
        self._named: Optional[dict[str, Span]] = None

    @property
    def status(self) -> Optional[str]:
        """Root-span status annotation (``ok``/``abandoned``/...)."""
        return None if self.root.meta is None else self.root.meta.get(
            "status")

    @property
    def completed(self) -> bool:
        return self.root.end is not None and self.status == "ok"

    @property
    def duration(self) -> float:
        return self.root.duration

    def span_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    def spans_named(self, name: str) -> list[Span]:
        return [span for span in self.root.walk() if span.name == name]

    def signature(self) -> str:
        """Canonical nesting signature: ``name(child,child(...),...)``.

        Depends only on span names and parent/child shape — not on
        timing — which is what the trace-structure golden test pins.
        """
        def render(span: Span) -> str:
            if not span.children:
                return span.name
            return "{}({})".format(
                span.name, ",".join(render(child)
                                    for child in span.children))
        return render(self.root)

    def __repr__(self) -> str:
        return "<RequestTrace #{} spans={} {}>".format(
            self.request_id, self.span_count(),
            "open" if self.root.end is None else self.status)


class SpanTracer:
    """Builds one :class:`RequestTrace` per request as events unfold.

    Every method is a no-op for requests without a begun trace, so
    instrumented components never need to know whether a particular
    request (a unit-test probe object, say) is being traced.
    """

    __slots__ = ("env", "traces", "_next_span_id")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: request_id -> trace, in begin order (dicts preserve it).
        self.traces: dict[int, RequestTrace] = {}
        self._next_span_id = 0

    # -- trace lifecycle ---------------------------------------------------
    # ``begin``/``start``/``instant`` build spans inline through
    # ``Span.__new__`` + slot stores: a traced scenario opens one span
    # per hop per request, and the ``Span.__init__`` call chain (plus
    # an ``annotate`` call for the metadata) was a measurable share of
    # the tracing-on overhead bound pinned in
    # ``benchmarks/test_tracing_overhead.py``.

    def begin(self, request_id: int, _new=Span.__new__,
              _cls=Span, **meta) -> RequestTrace:
        """Open the root span of a new request."""
        self._next_span_id = sid = self._next_span_id + 1
        root = _new(_cls)
        root.span_id = sid
        root.name = "request"
        root.start = self.env._now
        root.end = None
        root.parent = None
        root.children = None
        root.meta = meta or None
        trace = RequestTrace(request_id, root)
        root.trace = trace
        self.traces[request_id] = trace
        return trace

    def end(self, request_id: int, status: str = "ok", **meta) -> None:
        """Close the root span (stragglers stay open for finalize)."""
        trace = self.traces.get(request_id)
        if trace is None:
            return
        root = trace.root
        if root.end is not None:
            return
        root.end = self.env._now
        meta["status"] = status
        current = root.meta
        if current is None:
            root.meta = meta
        else:
            current.update(meta)

    def get(self, request_id: int) -> Optional[RequestTrace]:
        return self.traces.get(request_id)

    # -- spans -------------------------------------------------------------
    def start(self, request_id: int, name: str, _new=Span.__new__,
              _cls=Span, **meta) -> Optional[Span]:
        """Open a span as a child of the request's innermost open span."""
        trace = self.traces.get(request_id)
        if trace is None:
            return None
        self._next_span_id = sid = self._next_span_id + 1
        span = _new(_cls)
        span.span_id = sid
        span.name = name
        span.start = self.env._now
        span.end = None
        stack = trace._stack
        parent = stack[-1] if stack else trace.root
        span.parent = parent
        span.children = None
        span.meta = meta or None
        span.trace = trace
        children = parent.children
        if children is None:
            parent.children = [span]
        else:
            children.append(span)
        stack.append(span)
        return span

    def finish(self, span: Optional[Span], **meta) -> None:
        """Close ``span`` (``None`` and double closes are no-ops)."""
        if span is None or span.end is not None:
            return
        span.end = self.env._now
        if meta:
            span.annotate(**meta)
        # The span is almost always innermost — a tail pop.  Interrupts
        # and faults can close out of order; only then pay the scan.
        stack = span.trace._stack
        if stack:
            if stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)

    def start_named(self, request_id: int, name: str, _new=Span.__new__,
                    _cls=Span, **meta) -> None:
        """Open a cross-component span the consumer will close by name."""
        trace = self.traces.get(request_id)
        if trace is None:
            return
        named = trace._named
        if named is None:
            named = trace._named = {}
        elif name in named:
            return
        self._next_span_id = sid = self._next_span_id + 1
        span = _new(_cls)
        span.span_id = sid
        span.name = name
        span.start = self.env._now
        span.end = None
        stack = trace._stack
        parent = stack[-1] if stack else trace.root
        span.parent = parent
        span.children = None
        span.meta = meta or None
        span.trace = trace
        children = parent.children
        if children is None:
            parent.children = [span]
        else:
            children.append(span)
        stack.append(span)
        named[name] = span

    def finish_named(self, request_id: int, name: str, **meta) -> None:
        trace = self.traces.get(request_id)
        if trace is None or trace._named is None:
            return
        span = trace._named.pop(name, None)
        if span is None or span.end is not None:
            return
        span.end = self.env._now
        if meta:
            span.annotate(**meta)
        stack = trace._stack
        if stack:
            if stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)

    def instant(self, request_id: int, name: str, _new=Span.__new__,
                _cls=Span, **meta) -> None:
        """A zero-duration annotation span (decision points).

        Equivalent to ``finish(start(...))`` — the span is attached to
        the innermost open span and never touches the open stack (the
        push/pop pair cancels out).
        """
        trace = self.traces.get(request_id)
        if trace is None:
            return
        self._next_span_id = sid = self._next_span_id + 1
        span = _new(_cls)
        span.span_id = sid
        span.name = name
        span.start = span.end = self.env._now
        stack = trace._stack
        parent = stack[-1] if stack else trace.root
        span.parent = parent
        span.children = None
        span.meta = meta or None
        span.trace = trace
        children = parent.children
        if children is None:
            parent.children = [span]
        else:
            children.append(span)

    # -- completion --------------------------------------------------------
    def finalize(self) -> None:
        """Close every still-open span at the current time.

        Called once after the run: requests in flight at the horizon
        (and ghost work whose client already moved on) get their spans
        closed with an ``unfinished`` marker so exporters and the
        decomposer see only well-formed intervals.
        """
        now = self.env.now
        for trace in self.traces.values():
            for span in trace.root.walk():
                if span.end is None:
                    span.end = now
                    span.annotate(unfinished=True)
                    if span is trace.root and (
                            span.meta.get("status") is None):
                        span.annotate(status="unfinished")
            trace._stack.clear()
            if trace._named is not None:
                trace._named.clear()

    def completed_traces(self) -> list[RequestTrace]:
        """Traces whose request finished normally, in begin order."""
        return [trace for trace in self.traces.values() if trace.completed]

    def __len__(self) -> int:
        return len(self.traces)

    def __repr__(self) -> str:
        return "<SpanTracer traces={} spans={}>".format(
            len(self.traces), self._next_span_id)
