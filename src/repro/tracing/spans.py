"""Per-request span trees: the fine-grained monitoring the paper calls for.

A :class:`SpanTracer` installed on :attr:`Environment.tracer
<repro.sim.core.Environment.tracer>` records one :class:`RequestTrace`
per request, with one :class:`Span` per hop — client TCP send (and each
retransmission wait), web-tier accept queue, worker service, balancer
decision and endpoint wait, app-tier queue and service, database pool
and service — so "why did *this* request take 3.007 s" is answerable
from the trace alone (the question Figs. 2-4 answer with external
monitors).

The tracer follows the kernel's zero-cost-when-off hook pattern:
``Environment.tracer`` defaults to ``None``, every call site guards
with a single attribute check, and the tracer itself never creates or
schedules events — recording is pure observation, so the event
schedule (and the golden-trace hashes built on it) is byte-identical
with tracing on, off, or absent.

Span parentage is inferred per request: a span opened while another is
open for the same request becomes its child.  The hop structure is
sequential within one request, so this yields properly nested trees;
cross-component waits (a queue wait opened by the producer and closed
by the consumer) go through the *named* span API instead of carrying
the span object across the hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["Span", "RequestTrace", "SpanTracer"]


class Span:
    """One timed hop of one request."""

    __slots__ = ("span_id", "name", "start", "end", "parent", "children",
                 "meta", "trace")

    def __init__(self, span_id: int, name: str, start: float,
                 parent: Optional["Span"] = None,
                 trace: Optional["RequestTrace"] = None) -> None:
        self.span_id = span_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: list[Span] = []
        #: Lazily allocated annotation dict (most spans carry none).
        self.meta: Optional[dict] = None
        #: Owning trace (lets ``finish`` unwind the open stack in O(1)).
        self.trace = trace

    @property
    def duration(self) -> float:
        """Seconds from start to end (``0.0`` while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def annotate(self, **meta) -> None:
        if self.meta is None:
            self.meta = meta
        else:
            self.meta.update(meta)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in open order."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def depth(self) -> int:
        depth, span = 0, self.parent
        while span is not None:
            depth, span = depth + 1, span.parent
        return depth

    def __repr__(self) -> str:
        return "<Span #{} {} [{:.6f}, {}]>".format(
            self.span_id, self.name, self.start,
            "open" if self.end is None else format(self.end, ".6f"))


class RequestTrace:
    """The span tree of one request, rooted at its client-visible span."""

    __slots__ = ("request_id", "root", "_stack", "_named")

    def __init__(self, request_id: int, root: Span) -> None:
        self.request_id = request_id
        self.root = root
        #: Open spans, innermost last; the next span opened for this
        #: request becomes a child of the innermost open span.
        self._stack: list[Span] = [root]
        #: Open cross-component spans by name (producer opens,
        #: consumer closes).
        self._named: dict[str, Span] = {}

    @property
    def status(self) -> Optional[str]:
        """Root-span status annotation (``ok``/``abandoned``/...)."""
        return None if self.root.meta is None else self.root.meta.get(
            "status")

    @property
    def completed(self) -> bool:
        return self.root.end is not None and self.status == "ok"

    @property
    def duration(self) -> float:
        return self.root.duration

    def span_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    def spans_named(self, name: str) -> list[Span]:
        return [span for span in self.root.walk() if span.name == name]

    def signature(self) -> str:
        """Canonical nesting signature: ``name(child,child(...),...)``.

        Depends only on span names and parent/child shape — not on
        timing — which is what the trace-structure golden test pins.
        """
        def render(span: Span) -> str:
            if not span.children:
                return span.name
            return "{}({})".format(
                span.name, ",".join(render(child)
                                    for child in span.children))
        return render(self.root)

    def __repr__(self) -> str:
        return "<RequestTrace #{} spans={} {}>".format(
            self.request_id, self.span_count(),
            "open" if self.root.end is None else self.status)


class SpanTracer:
    """Builds one :class:`RequestTrace` per request as events unfold.

    Every method is a no-op for requests without a begun trace, so
    instrumented components never need to know whether a particular
    request (a unit-test probe object, say) is being traced.
    """

    __slots__ = ("env", "traces", "_next_span_id")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: request_id -> trace, in begin order (dicts preserve it).
        self.traces: dict[int, RequestTrace] = {}
        self._next_span_id = 0

    # -- trace lifecycle ---------------------------------------------------
    def begin(self, request_id: int, **meta) -> RequestTrace:
        """Open the root span of a new request."""
        root = self._new_span("request", None)
        if meta:
            root.annotate(**meta)
        trace = RequestTrace(request_id, root)
        root.trace = trace
        self.traces[request_id] = trace
        return trace

    def end(self, request_id: int, status: str = "ok", **meta) -> None:
        """Close the root span (stragglers stay open for finalize)."""
        trace = self.traces.get(request_id)
        if trace is None or trace.root.end is not None:
            return
        trace.root.end = self.env.now
        trace.root.annotate(status=status, **meta)

    def get(self, request_id: int) -> Optional[RequestTrace]:
        return self.traces.get(request_id)

    # -- spans -------------------------------------------------------------
    def start(self, request_id: int, name: str, **meta) -> Optional[Span]:
        """Open a span as a child of the request's innermost open span."""
        trace = self.traces.get(request_id)
        if trace is None:
            return None
        parent = trace._stack[-1] if trace._stack else trace.root
        span = self._new_span(name, parent, trace)
        if meta:
            span.annotate(**meta)
        trace._stack.append(span)
        return span

    def finish(self, span: Optional[Span], **meta) -> None:
        """Close ``span`` (``None`` and double closes are no-ops)."""
        if span is None or span.end is not None:
            return
        span.end = self.env.now
        if meta:
            span.annotate(**meta)
        # The span is usually innermost, but interrupts and faults can
        # close out of order; remove it from wherever it sits.
        stack = span.trace._stack
        if span in stack:
            stack.remove(span)

    def start_named(self, request_id: int, name: str, **meta) -> None:
        """Open a cross-component span the consumer will close by name."""
        trace = self.traces.get(request_id)
        if trace is None or name in trace._named:
            return
        span = self.start(request_id, name, **meta)
        if span is not None:
            trace._named[name] = span

    def finish_named(self, request_id: int, name: str, **meta) -> None:
        trace = self.traces.get(request_id)
        if trace is None:
            return
        span = trace._named.pop(name, None)
        if span is not None:
            self.finish(span, **meta)

    def instant(self, request_id: int, name: str, **meta) -> None:
        """A zero-duration annotation span (decision points)."""
        span = self.start(request_id, name, **meta)
        self.finish(span)

    # -- completion --------------------------------------------------------
    def finalize(self) -> None:
        """Close every still-open span at the current time.

        Called once after the run: requests in flight at the horizon
        (and ghost work whose client already moved on) get their spans
        closed with an ``unfinished`` marker so exporters and the
        decomposer see only well-formed intervals.
        """
        now = self.env.now
        for trace in self.traces.values():
            for span in trace.root.walk():
                if span.end is None:
                    span.end = now
                    span.annotate(unfinished=True)
                    if span is trace.root and (
                            span.meta.get("status") is None):
                        span.annotate(status="unfinished")
            trace._stack.clear()
            trace._named.clear()

    def completed_traces(self) -> list[RequestTrace]:
        """Traces whose request finished normally, in begin order."""
        return [trace for trace in self.traces.values() if trace.completed]

    def __len__(self) -> int:
        return len(self.traces)

    # -- internals ---------------------------------------------------------
    def _new_span(self, name: str, parent: Optional[Span],
                  trace: Optional[RequestTrace] = None) -> Span:
        self._next_span_id += 1
        span = Span(self._next_span_id, name, self.env.now, parent, trace)
        if parent is not None:
            parent.children.append(span)
        return span

    def __repr__(self) -> str:
        return "<SpanTracer traces={} spans={}>".format(
            len(self.traces), self._next_span_id)
