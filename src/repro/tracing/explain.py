"""VLRT explainer: group very-long-response-time requests by cause.

The paper's Figure 4 observation — VLRT response times cluster at 1 s,
2 s and 3 s, the multiples of the TCP minimum RTO — is reproduced here
from trace data alone: for each completed request slower than the VLRT
threshold, the critical-path decomposition names the dominant latency
bucket, and requests dominated by retransmission backoff are clustered
by how many full timer periods they absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.metrics.stats import VLRT_THRESHOLD
from repro.tracing.critical_path import (
    CriticalPath,
    decompose,
    is_vlrt_cause,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.spans import RequestTrace

__all__ = ["VlrtExplanation", "explain_vlrt"]


@dataclass
class VlrtExplanation:
    """Why the run's VLRT requests were slow, per trace evidence."""

    total_requests: int
    vlrt_count: int
    threshold: float
    rto: float
    #: Dominant bucket -> number of VLRT requests it explains.
    by_cause: dict[str, int] = field(default_factory=dict)
    #: Retransmission cluster (in RTO multiples) -> request count:
    #: ``{1: ..., 2: ..., 3: ...}`` is the paper's Fig. 4 clustering.
    clusters: dict[int, int] = field(default_factory=dict)
    #: Critical paths of the VLRT requests, slowest first.
    paths: list[CriticalPath] = field(default_factory=list)

    @property
    def explained_fraction(self) -> float:
        """Fraction of VLRT requests whose dominant bucket is one of
        the paper's two mechanisms (retransmission, queue wait)."""
        if self.vlrt_count == 0:
            return 1.0
        explained = sum(count for cause, count in self.by_cause.items()
                        if is_vlrt_cause(cause))
        return explained / self.vlrt_count

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            "VLRT explainer: {} of {} completed requests > {:.0f} ms"
            .format(self.vlrt_count, self.total_requests,
                    1000 * self.threshold),
        ]
        if self.vlrt_count == 0:
            lines.append("  (nothing to explain)")
            return "\n".join(lines)
        lines.append("  dominant cause:")
        for cause in sorted(self.by_cause,
                            key=lambda key: -self.by_cause[key]):
            count = self.by_cause[cause]
            lines.append("    {:<20s} {:>5d}  ({:.1f}%)".format(
                cause, count, 100.0 * count / self.vlrt_count))
        lines.append("  attributed to retransmission/queue wait: "
                     "{:.1f}%".format(100.0 * self.explained_fraction))
        if self.clusters:
            lines.append("  retransmission clusters (x RTO = {:.1f} s):"
                         .format(self.rto))
            for multiple in sorted(self.clusters):
                lines.append("    ~{:.0f} s: {} requests".format(
                    multiple * self.rto, self.clusters[multiple]))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready summary (paths trimmed to their rows)."""
        return {
            "total_requests": self.total_requests,
            "vlrt_count": self.vlrt_count,
            "threshold": self.threshold,
            "rto": self.rto,
            "by_cause": dict(self.by_cause),
            "clusters": {str(key): value
                         for key, value in sorted(self.clusters.items())},
            "explained_fraction": self.explained_fraction,
            "paths": [path.row() for path in self.paths],
        }


def explain_vlrt(traces: Iterable["RequestTrace"],
                 threshold: float = VLRT_THRESHOLD,
                 rto: float = 1.0,
                 paths: Optional[list[CriticalPath]] = None
                 ) -> VlrtExplanation:
    """Explain every completed VLRT request in ``traces``.

    ``rto`` is the client retransmission timer used to bucket the
    retransmission clusters; pass the run's
    :attr:`~repro.netmodel.tcp.RetransmissionPolicy.initial_rto`.
    ``paths`` (normally omitted) lets a caller reuse pre-computed
    decompositions.
    """
    completed = [trace for trace in traces if trace.completed]
    if paths is None:
        paths = [decompose(trace) for trace in completed
                 if trace.duration > threshold]
    by_cause: dict[str, int] = {}
    clusters: dict[int, int] = {}
    for path in paths:
        cause = path.dominant
        by_cause[cause] = by_cause.get(cause, 0) + 1
        retrans = path.buckets.get("retransmission", 0.0)
        if retrans >= 0.5 * rto:
            multiple = int(round(retrans / rto))
            if multiple > 0:
                clusters[multiple] = clusters.get(multiple, 0) + 1
    paths.sort(key=lambda path: -path.total)
    return VlrtExplanation(
        total_requests=len(completed),
        vlrt_count=len(paths),
        threshold=threshold,
        rto=rto,
        by_cause=by_cause,
        clusters=clusters,
        paths=paths,
    )
