"""repro — reproduction of the ICDCS 2017 millibottleneck load-balancing study.

This package implements, in pure Python, everything needed to reproduce
"Limitations of Load Balancing Mechanisms for N-Tier Systems in the
Presence of Millibottlenecks" (Zhu et al., ICDCS 2017): a discrete-event
simulation kernel (:mod:`repro.sim`), an OS model whose dirty-page
flushing produces millibottlenecks (:mod:`repro.osmodel`), a network
model whose accept-queue drops produce VLRT requests
(:mod:`repro.netmodel`), Apache/Tomcat/MySQL tier models
(:mod:`repro.tiers`), the mod_jk two-level load balancer with the
paper's policies and remedies (:mod:`repro.core`), the RUBBoS workload
(:mod:`repro.workload`), experiment wiring (:mod:`repro.cluster`), and
the paper's fine-grained analysis methodology (:mod:`repro.analysis`).

Quickstart::

    from repro import ExperimentRunner, Scenario

    result = ExperimentRunner(Scenario.named("table1/current_load")).run()
    print(result.summary())
"""

__version__ = "1.0.0"

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    compare_policies,
)
from repro.cluster.scenarios import Scenario
from repro.cluster.spec import TopologySpec
from repro.cluster.topology import NTierSystem, build_from_spec, build_system
from repro.core.balancer import BalancerConfig, DirectDispatcher, LoadBalancer
from repro.core.mechanism import ModifiedGetEndpoint, OriginalGetEndpoint
from repro.core.policies import (
    CurrentLoadPolicy,
    Policy,
    TotalRequestPolicy,
    TotalTrafficPolicy,
    make_policy,
)
from repro.core.remedies import TABLE1_BUNDLES, RemedyBundle, get_bundle
from repro.errors import (
    AnalysisError,
    BalancerError,
    ConfigurationError,
    NoCandidateError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.metrics.stats import ResponseTimeStats
from repro.osmodel.profiles import MillibottleneckProfile
from repro.parallel import (
    ExperimentSummary,
    Replication,
    replicate,
    run_experiments,
    summarize,
)
from repro.workload.mix import browsing_only_mix, read_write_mix

__all__ = [
    "__version__",
    # experiments
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "Scenario",
    "ScaleProfile",
    "compare_policies",
    "NTierSystem",
    "build_system",
    "build_from_spec",
    "TopologySpec",
    "ExperimentSummary",
    "Replication",
    "replicate",
    "run_experiments",
    "summarize",
    # the contribution
    "LoadBalancer",
    "DirectDispatcher",
    "BalancerConfig",
    "Policy",
    "TotalRequestPolicy",
    "TotalTrafficPolicy",
    "CurrentLoadPolicy",
    "make_policy",
    "OriginalGetEndpoint",
    "ModifiedGetEndpoint",
    "RemedyBundle",
    "TABLE1_BUNDLES",
    "get_bundle",
    # supporting
    "MillibottleneckProfile",
    "ResponseTimeStats",
    "browsing_only_mix",
    "read_write_mix",
    # errors
    "ReproError",
    "SimulationError",
    "ConfigurationError",
    "WorkloadError",
    "BalancerError",
    "NoCandidateError",
    "AnalysisError",
]
