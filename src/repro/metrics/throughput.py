"""Throughput and goodput accounting.

Complements the response-time metrics with the rate view: completed
requests per window (throughput), completions under the interactive
threshold per window (goodput), and offered-vs-carried comparisons for
open-loop experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AnalysisError
from repro.metrics.recorder import ResponseTimeRecorder
from repro.metrics.stats import NORMAL_THRESHOLD
from repro.metrics.timeseries import TimeSeries
from repro.metrics.windows import PAPER_WINDOW, WindowedCounter


def throughput_series(recorder: ResponseTimeRecorder,
                      window: float = 1.0,
                      until: Optional[float] = None,
                      goodput_threshold: Optional[float] = None
                      ) -> TimeSeries:
    """Completions per second, per fixed window of completion time.

    With ``goodput_threshold`` only requests faster than the threshold
    count — the *goodput* the users actually perceived.
    """
    if window <= 0:
        raise AnalysisError("window must be positive")
    counter = WindowedCounter(window, recorder.name + ".tput")
    for request in recorder.requests:
        if (goodput_threshold is not None
                and request.response_time > goodput_threshold):
            continue
        counter.record(request.finished_at)
    series = counter.series(until=until)
    # Convert counts per window into a per-second rate.
    out = TimeSeries(series.name)
    for time, count in series:
        out.append(time, count / window)
    return out


def goodput_series(recorder: ResponseTimeRecorder,
                   window: float = 1.0,
                   until: Optional[float] = None,
                   threshold: float = NORMAL_THRESHOLD * 10
                   ) -> TimeSeries:
    """Completions faster than ``threshold`` (default 100 ms) per second."""
    return throughput_series(recorder, window, until,
                             goodput_threshold=threshold)


def goodput_ratio(recorder: ResponseTimeRecorder,
                  threshold: float = NORMAL_THRESHOLD * 10) -> float:
    """Fraction of all completions faster than ``threshold``."""
    if not len(recorder):
        raise AnalysisError("no completed requests")
    good = sum(1 for request in recorder.requests
               if request.response_time <= threshold)
    return good / len(recorder)


def interval_throughput(recorder: ResponseTimeRecorder,
                        start: float, end: float) -> float:
    """Mean completions per second over ``[start, end)``."""
    if end <= start:
        raise AnalysisError("empty interval")
    completed = sum(1 for request in recorder.requests
                    if start <= request.finished_at < end)
    return completed / (end - start)
