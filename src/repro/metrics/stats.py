"""Summary statistics for response-time populations.

Provides the exact quantities Table I of the paper reports — average
response time, %VLRT (>1000 ms) and %normal (<10 ms) — plus the usual
long-tail percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError

#: Threshold above which the paper classifies a request as VLRT.
VLRT_THRESHOLD = 1.000
#: Threshold below which the paper classifies a request as "normal".
NORMAL_THRESHOLD = 0.010


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) using linear interpolation."""
    if not len(samples):
        raise AnalysisError("no samples")
    if not 0 <= q <= 100:
        raise AnalysisError("percentile must be in [0, 100]")
    return float(np.percentile(np.asarray(samples), q))


@dataclass(frozen=True)
class ResponseTimeStats:
    """Summary of a response-time population (all times in seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    p999: float
    max: float
    vlrt_count: int
    normal_count: int

    @property
    def vlrt_fraction(self) -> float:
        """Fraction of requests slower than :data:`VLRT_THRESHOLD`."""
        return self.vlrt_count / self.count if self.count else 0.0

    @property
    def normal_fraction(self) -> float:
        """Fraction of requests faster than :data:`NORMAL_THRESHOLD`."""
        return self.normal_count / self.count if self.count else 0.0

    @property
    def mean_ms(self) -> float:
        """Mean response time in milliseconds (Table I's unit)."""
        return self.mean * 1000.0

    def row(self) -> dict[str, float]:
        """A Table-I-shaped row."""
        return {
            "total_requests": self.count,
            "avg_response_time_ms": round(self.mean_ms, 2),
            "vlrt_pct": round(100.0 * self.vlrt_fraction, 2),
            "normal_pct": round(100.0 * self.normal_fraction, 2),
        }

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "ResponseTimeStats":
        """Compute all statistics from raw response times (seconds)."""
        if not len(samples):
            raise AnalysisError("cannot summarise zero requests")
        array = np.asarray(samples, dtype=float)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            median=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            p999=float(np.percentile(array, 99.9)),
            max=float(array.max()),
            vlrt_count=int((array > VLRT_THRESHOLD).sum()),
            normal_count=int((array < NORMAL_THRESHOLD).sum()),
        )
