"""Time-series containers used by all measurement code.

A :class:`TimeSeries` is an append-only sequence of ``(time, value)``
pairs with convenience operations used throughout the analysis layer:
slicing by time, resampling onto fixed windows, and conversion of
cumulative counters into rates (how the paper turns cumulative CPU time
into fine-grained utilisation).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import AnalysisError


class TimeSeries:
    """Append-only ``(time, value)`` series with analysis helpers."""

    def __init__(self, name: str = "",
                 points: Iterable[tuple[float, float]] = ()) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        for time, value in points:
            self.append(time, value)

    # -- construction ------------------------------------------------------
    def append(self, time: float, value: float) -> None:
        """Add a point; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise AnalysisError(
                "time went backwards: {} after {}".format(
                    time, self._times[-1]))
        self._times.append(float(time))
        self._values.append(float(value))

    @classmethod
    def from_arrays(cls, times: Sequence[float], values: Sequence[float],
                    name: str = "") -> "TimeSeries":
        if len(times) != len(values):
            raise AnalysisError("times and values differ in length")
        return cls(name, zip(times, values))

    # -- basic access --------------------------------------------------------
    @property
    def times(self) -> list[float]:
        return self._times

    @property
    def values(self) -> list[float]:
        return self._values

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def __repr__(self) -> str:
        return "<TimeSeries {!r} n={}>".format(self.name, len(self))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self._times), np.asarray(self._values)

    # -- queries -------------------------------------------------------------
    def slice(self, start: float, end: float) -> "TimeSeries":
        """Points with ``start <= time < end``."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        out = TimeSeries(self.name)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def value_at(self, time: float) -> float:
        """Last recorded value at or before ``time`` (step interpolation)."""
        if not self._times:
            raise AnalysisError("empty series")
        index = bisect_right(self._times, time) - 1
        if index < 0:
            raise AnalysisError(
                "no sample at or before t={}".format(time))
        return self._values[index]

    def max(self) -> float:
        if not self._values:
            raise AnalysisError("empty series")
        return max(self._values)

    def min(self) -> float:
        if not self._values:
            raise AnalysisError("empty series")
        return min(self._values)

    def mean(self) -> float:
        if not self._values:
            raise AnalysisError("empty series")
        return float(np.mean(self._values))

    def argmax(self) -> float:
        """Time of the maximum value (first occurrence)."""
        if not self._values:
            raise AnalysisError("empty series")
        return self._times[int(np.argmax(self._values))]

    # -- transforms ------------------------------------------------------------
    def to_rate(self) -> "TimeSeries":
        """Differentiate a cumulative counter into a per-second rate.

        The result has one fewer point; each rate is stamped at the
        *end* of its interval.
        """
        if len(self) < 2:
            return TimeSeries(self.name + ".rate")
        out = TimeSeries(self.name + ".rate")
        for i in range(1, len(self)):
            dt = self._times[i] - self._times[i - 1]
            if dt <= 0:
                continue
            rate = (self._values[i] - self._values[i - 1]) / dt
            out.append(self._times[i], rate)
        return out

    def resample_max(self, window: float) -> "TimeSeries":
        """Max value per fixed window, stamped at the window start."""
        return self._resample(window, max)

    def resample_mean(self, window: float) -> "TimeSeries":
        """Mean value per fixed window, stamped at the window start."""
        return self._resample(window, lambda vs: sum(vs) / len(vs))

    def _resample(self, window: float, combine) -> "TimeSeries":
        if window <= 0:
            raise AnalysisError("window must be positive")
        out = TimeSeries(self.name)
        if not self._times:
            return out
        start = self._times[0] - (self._times[0] % window)
        bucket: list[float] = []
        edge = start + window
        for time, value in self:
            while time >= edge:
                if bucket:
                    out.append(edge - window, combine(bucket))
                    bucket = []
                edge += window
            bucket.append(value)
        if bucket:
            out.append(edge - window, combine(bucket))
        return out
