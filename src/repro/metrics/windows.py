"""Fixed-window counters and utilisation accounting.

The paper's methodology counts events (e.g. VLRT requests) and measures
utilisation in **50 ms windows** — coarser monitoring averages
millibottlenecks away entirely.  :class:`WindowedCounter` bins discrete
events into such windows; :class:`BusyTracker` integrates busy time of a
multi-slot resource (a CPU) so utilisation per window can be derived
exactly rather than sampled.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import AnalysisError
from repro.metrics.timeseries import TimeSeries

#: Window length used throughout the paper's figures (50 milliseconds).
PAPER_WINDOW = 0.050


def window_index(time: float, window: float) -> int:
    """Index of the fixed window containing ``time``.

    Uses a small relative epsilon so that times which are an exact
    multiple of ``window`` up to float rounding (0.3 / 0.05, say) land
    in the window they open rather than the one they close.
    """
    return int(math.floor(time / window + 1e-9))


def window_start(time: float, window: float) -> float:
    """Start time of the fixed window containing ``time``."""
    return window_index(time, window) * window


class WindowedCounter:
    """Counts events into fixed, contiguous time windows."""

    def __init__(self, window: float = PAPER_WINDOW, name: str = "") -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.name = name
        self._counts: dict[int, int] = {}

    def record(self, time: float, count: int = 1) -> None:
        """Add ``count`` events at ``time``."""
        if time < 0:
            raise AnalysisError("negative timestamp")
        index = window_index(time, self.window)
        self._counts[index] = self._counts.get(index, 0) + count

    @property
    def total(self) -> int:
        """Total events recorded."""
        return sum(self._counts.values())

    def count_in_window(self, index: int) -> int:
        """Events in window ``index`` (window start = index * window)."""
        return self._counts.get(index, 0)

    def series(self, until: Optional[float] = None) -> TimeSeries:
        """Dense per-window counts (zeros included) as a TimeSeries.

        Each point is stamped at the window start.  ``until`` extends the
        series with trailing zero windows up to that time.
        """
        out = TimeSeries(self.name)
        if not self._counts and until is None:
            return out
        last = max(self._counts) if self._counts else -1
        if until is not None:
            last = max(last, int(math.ceil(until / self.window)) - 1)
        for index in range(0, last + 1):
            out.append(index * self.window, self._counts.get(index, 0))
        return out

    def peak(self) -> tuple[float, int]:
        """(window start, count) of the busiest window."""
        if not self._counts:
            raise AnalysisError("no events recorded")
        index = max(self._counts, key=lambda i: self._counts[i])
        return index * self.window, self._counts[index]


class BusyTracker:
    """Exact busy-time integration for a multi-slot resource.

    Call :meth:`acquire` when a slot starts doing work and
    :meth:`release` when it stops; the tracker integrates
    ``busy_slots dt`` so that utilisation over any interval is exact.
    Separate trackers are kept per "kind" of work by the CPU model
    (user time vs iowait).
    """

    def __init__(self, slots: int, name: str = "") -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = slots
        self.name = name
        self._busy = 0
        self._last_change = 0.0
        self._accumulated = 0.0
        #: (time, cumulative busy-seconds) checkpoints for series queries.
        self._checkpoints = TimeSeries(name + ".busy")
        self._checkpoints.append(0.0, 0.0)

    @property
    def busy_slots(self) -> int:
        return self._busy

    def _advance(self, now: float) -> None:
        if now < self._last_change:
            raise AnalysisError("time went backwards in BusyTracker")
        self._accumulated += self._busy * (now - self._last_change)
        self._last_change = now

    def acquire(self, now: float, count: int = 1) -> None:
        """Mark ``count`` more slots busy from ``now`` on."""
        self._advance(now)
        self._busy += count
        if self._busy > self.slots:
            raise AnalysisError(
                "{} slots busy but only {} exist".format(self._busy, self.slots))
        self._checkpoints.append(now, self._accumulated)

    def release(self, now: float, count: int = 1) -> None:
        """Mark ``count`` slots idle from ``now`` on."""
        self._advance(now)
        self._busy -= count
        if self._busy < 0:
            raise AnalysisError("released more slots than acquired")
        self._checkpoints.append(now, self._accumulated)

    def busy_seconds(self, now: float) -> float:
        """Cumulative busy slot-seconds up to ``now``."""
        return self._accumulated + self._busy * (now - self._last_change)

    def utilization(self, start: float, end: float) -> float:
        """Mean utilisation (0..1) over ``[start, end)``, exact."""
        if end <= start:
            raise AnalysisError("empty interval")
        used = self._busy_between(start, end)
        return used / ((end - start) * self.slots)

    def _busy_between(self, start: float, end: float) -> float:
        return self._cumulative_at(end) - self._cumulative_at(start)

    def _cumulative_at(self, time: float) -> float:
        if time >= self._last_change:
            return self._accumulated + self._busy * (time - self._last_change)
        # Interpolate between checkpoints: busy level is constant between
        # consecutive checkpoints, so linear interpolation of the
        # cumulative integral is exact.
        times = self._checkpoints.times
        values = self._checkpoints.values
        from bisect import bisect_right
        index = bisect_right(times, time) - 1
        if index < 0:
            return 0.0
        if index + 1 < len(times):
            t0, t1 = times[index], times[index + 1]
            v0, v1 = values[index], values[index + 1]
            if t1 == t0:
                return v1
            return v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        return values[index]

    def utilization_series(self, window: float, until: float,
                           start: float = 0.0) -> TimeSeries:
        """Per-window utilisation from ``start`` to ``until``.

        Each point is stamped at the window start; this is the exact
        counterpart of the paper's fine-grained CPU plots.
        """
        if window <= 0:
            raise AnalysisError("window must be positive")
        out = TimeSeries(self.name + ".util")
        edge = start
        while edge + window <= until + 1e-12:
            out.append(edge, self.utilization(edge, edge + window))
            edge += window
        return out
