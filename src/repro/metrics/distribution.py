"""Response-time frequency distributions (Fig. 4).

The paper plots "frequency of requests by their response times" on a
log-ish time axis, which makes both the <10 ms mass and the VLRT
clusters at ~1 s / ~2 s / ~3 s visible at once.
:class:`ResponseTimeDistribution` reproduces that view with
logarithmically spaced buckets plus cluster detection around the TCP
retransmission times.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


class ResponseTimeDistribution:
    """Log-bucketed histogram of response times.

    Parameters
    ----------
    low, high:
        Bucket range in seconds; samples outside are clamped into the
        first / last bucket.
    buckets_per_decade:
        Resolution of the log-spaced grid.
    """

    def __init__(self, low: float = 0.001, high: float = 10.0,
                 buckets_per_decade: int = 10) -> None:
        if low <= 0 or high <= low:
            raise AnalysisError("need 0 < low < high")
        if buckets_per_decade < 1:
            raise AnalysisError("buckets_per_decade must be >= 1")
        decades = math.log10(high / low)
        count = max(1, int(round(decades * buckets_per_decade)))
        self.edges = np.logspace(math.log10(low), math.log10(high),
                                 count + 1)
        self.counts = np.zeros(count, dtype=int)

    def add(self, response_time: float) -> None:
        """Record one response time (seconds)."""
        index = int(np.searchsorted(self.edges, response_time,
                                    side="right")) - 1
        index = min(max(index, 0), len(self.counts) - 1)
        self.counts[index] += 1

    def add_all(self, response_times: Sequence[float]) -> None:
        for response_time in response_times:
            self.add(response_time)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def bucket_centers(self) -> np.ndarray:
        """Geometric center of each bucket."""
        return np.sqrt(self.edges[:-1] * self.edges[1:])

    def mass_between(self, low: float, high: float) -> int:
        """Number of samples whose *bucket center* lies in [low, high)."""
        centers = self.bucket_centers()
        mask = (centers >= low) & (centers < high)
        return int(self.counts[mask].sum())

    def modes(self, min_count: int = 1) -> list[tuple[float, int]]:
        """Local maxima of the histogram: ``(bucket center, count)``.

        A bucket is a mode when it is at least as tall as both
        neighbours and holds ``min_count`` or more samples.
        """
        centers = self.bucket_centers()
        out = []
        for i, count in enumerate(self.counts):
            if count < min_count:
                continue
            left = self.counts[i - 1] if i > 0 else 0
            right = self.counts[i + 1] if i + 1 < len(self.counts) else 0
            if count >= left and count >= right:
                out.append((float(centers[i]), int(count)))
        return out

    def vlrt_clusters(self, targets: Sequence[float] = (1.0, 2.0, 3.0),
                      tolerance: float = 0.35) -> dict[float, int]:
        """Sample mass near each retransmission-induced cluster time.

        Each bucket is attributed to the *nearest* target, and only
        counts when its center lies within ``target * tolerance`` of
        that target, so adjacent clusters never double-count.  Fig. 4's
        three VLRT clusters sit at about 1 s, 2 s and 3 s.
        """
        if not targets:
            raise AnalysisError("need at least one cluster target")
        out = {target: 0 for target in targets}
        for center, count in zip(self.bucket_centers(), self.counts):
            nearest = min(targets, key=lambda t: abs(center - t))
            if abs(center - nearest) <= nearest * tolerance:
                out[nearest] += int(count)
        return out

    def rows(self) -> list[tuple[float, float, int]]:
        """(bucket_low, bucket_high, count) for report printing."""
        return [
            (float(self.edges[i]), float(self.edges[i + 1]),
             int(self.counts[i]))
            for i in range(len(self.counts))
        ]
