"""Measurement substrate: time series, windowed counters, recorders.

Everything the paper measures — point-in-time response times, 50 ms
VLRT windows, fine-grained CPU utilisation, queue-length timelines,
response-time distributions, Table-I summary statistics — is built
from the primitives in this package.
"""

from repro.metrics.distribution import ResponseTimeDistribution
from repro.metrics.recorder import (
    CompletedRequest,
    ResponseTimeRecorder,
    StreamingResponseTimeRecorder,
)
from repro.metrics.stats import (
    NORMAL_THRESHOLD,
    VLRT_THRESHOLD,
    ResponseTimeStats,
    percentile,
)
from repro.metrics.throughput import (
    goodput_ratio,
    goodput_series,
    interval_throughput,
    throughput_series,
)
from repro.metrics.timeseries import TimeSeries
from repro.metrics.windows import PAPER_WINDOW, BusyTracker, WindowedCounter

__all__ = [
    "TimeSeries",
    "WindowedCounter",
    "BusyTracker",
    "PAPER_WINDOW",
    "ResponseTimeStats",
    "ResponseTimeRecorder",
    "StreamingResponseTimeRecorder",
    "CompletedRequest",
    "ResponseTimeDistribution",
    "percentile",
    "throughput_series",
    "goodput_series",
    "goodput_ratio",
    "interval_throughput",
    "VLRT_THRESHOLD",
    "NORMAL_THRESHOLD",
]
