"""Per-request response-time recording.

The :class:`ResponseTimeRecorder` collects one
:class:`CompletedRequest` per finished request and can answer every
response-time question the paper's figures ask: Table I summary rows,
point-in-time response-time series (Figs. 1 & 3), per-window VLRT
counts (Figs. 2a/6a/7a), and the response-time frequency distribution
(Fig. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import AnalysisError
from repro.metrics.stats import (
    NORMAL_THRESHOLD,
    VLRT_THRESHOLD,
    ResponseTimeStats,
)
from repro.metrics.timeseries import TimeSeries
from repro.metrics.windows import PAPER_WINDOW, WindowedCounter, window_start


@dataclass(frozen=True)
class CompletedRequest:
    """One finished request, as seen end-to-end by its client."""

    request_id: int
    interaction: str
    started_at: float
    finished_at: float
    #: How many times the initial packet was dropped and retransmitted.
    retransmissions: int = 0
    #: Which backend (application server) finally served the request.
    served_by: Optional[str] = None

    @property
    def response_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def is_vlrt(self) -> bool:
        return self.response_time > VLRT_THRESHOLD


class ResponseTimeRecorder:
    """Collects completed requests and derives the paper's metrics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.requests: list[CompletedRequest] = []

    def record(self, request: CompletedRequest) -> None:
        """Add one completed request."""
        self.requests.append(request)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def response_times(self) -> list[float]:
        return [r.response_time for r in self.requests]

    def stats(self) -> ResponseTimeStats:
        """Table-I style summary statistics."""
        return ResponseTimeStats.from_samples(self.response_times)

    def point_in_time(self, window: float = PAPER_WINDOW) -> TimeSeries:
        """Max response time per completion window (Figs. 1 & 3).

        Point-in-time response time is plotted against *completion* time
        and uses the worst request in each window so that VLRT spikes
        are visible rather than averaged away.
        """
        ordered = sorted(self.requests, key=lambda r: r.finished_at)
        series = TimeSeries(self.name + ".rt")
        for request in ordered:
            series_append_max(series, request.finished_at, window,
                              request.response_time)
        return series

    def vlrt_windows(self, window: float = PAPER_WINDOW,
                     until: Optional[float] = None) -> TimeSeries:
        """VLRT count per window of completion time (Figs. 2a/6a/7a)."""
        counter = WindowedCounter(window, self.name + ".vlrt")
        for request in self.requests:
            if request.is_vlrt:
                counter.record(request.finished_at)
        return counter.series(until=until)

    def vlrt_requests(self) -> list[CompletedRequest]:
        """All requests that exceeded the VLRT threshold."""
        return [r for r in self.requests if r.is_vlrt]

    def served_by_counts(self, start: float = 0.0,
                         end: float = float("inf")) -> dict[str, int]:
        """How many completions each backend produced in ``[start, end)``.

        This is the per-backend workload distribution check of §II-B.
        """
        counts: dict[str, int] = {}
        for request in self.requests:
            if request.served_by is None:
                continue
            if start <= request.finished_at < end:
                counts[request.served_by] = counts.get(
                    request.served_by, 0) + 1
        return counts

    def retransmitted(self) -> list[CompletedRequest]:
        """Requests that needed at least one retransmission."""
        return [r for r in self.requests if r.retransmissions > 0]


class StreamingResponseTimeRecorder:
    """O(1)-memory-per-request recorder for the large-N axis.

    :class:`ResponseTimeRecorder` keeps one :class:`CompletedRequest`
    per finished request, which is the right trade at RUBBoS scale but
    becomes the dominant heap consumer once aggregated runs push
    millions of completions: the sample list grows without bound and
    ``stats()`` sorts it wholesale.  This recorder folds each
    completion into fixed-size aggregates at record time:

    * count / sum / max, and exact VLRT / normal threshold counts;
    * a log-spaced response-time histogram (:data:`BINS_PER_DECADE`
      bins per decade) from which percentiles are answered with a
      bounded relative error of ``10 ** (1 / BINS_PER_DECADE) - 1``
      (~2.3% at the default resolution);
    * per-window VLRT counts and the per-window point-in-time max
      (completions arrive in time order in the simulator, so the
      windowed max can be maintained incrementally);
    * per-backend completion totals.

    Memory is O(histogram bins + elapsed windows) regardless of the
    request count.  The query surface mirrors the list-backed recorder
    (``stats`` / ``len`` / ``point_in_time`` / ``vlrt_windows`` /
    ``served_by_counts``); queries that inherently need per-request
    history (``vlrt_requests``, time-ranged ``served_by_counts``)
    raise :class:`~repro.errors.AnalysisError` instead of silently
    lying.
    """

    #: Histogram resolution (relative error ~= 10**(1/bins) - 1).
    BINS_PER_DECADE = 100
    #: Smallest resolvable response time; faster requests clamp here.
    MIN_RT = 1e-6
    #: Decades covered from :data:`MIN_RT` (1 microsecond .. 10^4 s).
    DECADES = 10

    def __init__(self, name: str = "",
                 window: float = PAPER_WINDOW) -> None:
        self.name = name
        self.window = window
        self._nbins = self.BINS_PER_DECADE * self.DECADES
        self._hist = np.zeros(self._nbins, dtype=np.int64)
        self._log_min = math.log10(self.MIN_RT)
        self.count = 0
        self._sum = 0.0
        self._max = 0.0
        self.vlrt_count = 0
        self.normal_count = 0
        self._vlrt = WindowedCounter(window, name + ".vlrt")
        self._pit = TimeSeries(name + ".rt")
        self._served_by: dict[str, int] = {}

    def record(self, request: CompletedRequest) -> None:
        """Fold one completed request into the aggregates."""
        self.record_time(request.finished_at, request.response_time,
                         request.served_by)

    def record_time(self, finished_at: float, response_time: float,
                    served_by: Optional[str] = None) -> None:
        """Object-free fast path: record a bare completion."""
        self.count += 1
        self._sum += response_time
        if response_time > self._max:
            self._max = response_time
        if response_time > VLRT_THRESHOLD:
            self.vlrt_count += 1
            self._vlrt.record(finished_at)
        elif response_time < NORMAL_THRESHOLD:
            self.normal_count += 1
        bin_index = int((math.log10(response_time) - self._log_min)
                        * self.BINS_PER_DECADE) if (
                            response_time > self.MIN_RT) else 0
        if bin_index >= self._nbins:
            bin_index = self._nbins - 1
        self._hist[bin_index] += 1
        series_append_max(self._pit, finished_at, self.window,
                          response_time)
        if served_by is not None:
            self._served_by[served_by] = self._served_by.get(
                served_by, 0) + 1

    def __len__(self) -> int:
        return self.count

    def _percentile(self, q: float) -> float:
        """Percentile from the histogram (upper bin edge, clamped to max)."""
        target = q / 100.0 * self.count
        cumulative = np.cumsum(self._hist)
        bin_index = int(np.searchsorted(cumulative, target))
        edge = 10.0 ** (self._log_min
                        + (bin_index + 1) / self.BINS_PER_DECADE)
        return min(edge, self._max)

    def stats(self) -> ResponseTimeStats:
        """Table-I style summary (percentiles are histogram-bounded)."""
        if not self.count:
            raise AnalysisError("cannot summarise zero requests")
        return ResponseTimeStats(
            count=self.count,
            mean=self._sum / self.count,
            median=self._percentile(50),
            p95=self._percentile(95),
            p99=self._percentile(99),
            p999=self._percentile(99.9),
            max=self._max,
            vlrt_count=self.vlrt_count,
            normal_count=self.normal_count,
        )

    def point_in_time(self, window: Optional[float] = None) -> TimeSeries:
        """Max response time per completion window (Figs. 1 & 3)."""
        if window is not None and window != self.window:
            raise AnalysisError(
                "streaming recorder bins at construction time; "
                "requested window {} != configured {}".format(
                    window, self.window))
        return self._pit

    def vlrt_windows(self, window: Optional[float] = None,
                     until: Optional[float] = None) -> TimeSeries:
        """VLRT count per window of completion time (Figs. 2a/6a/7a)."""
        if window is not None and window != self.window:
            raise AnalysisError(
                "streaming recorder bins at construction time; "
                "requested window {} != configured {}".format(
                    window, self.window))
        return self._vlrt.series(until=until)

    def served_by_counts(self, start: float = 0.0,
                         end: float = float("inf")) -> dict[str, int]:
        """Per-backend completion totals (whole-run only)."""
        if start != 0.0 or end != float("inf"):
            raise AnalysisError(
                "streaming recorder keeps no per-request history; "
                "time-ranged served_by_counts needs ResponseTimeRecorder")
        return dict(self._served_by)


def series_append_max(series: TimeSeries, time: float, window: float,
                      value: float) -> None:
    """Append ``value`` bucketed to ``window``, keeping per-bucket max.

    Requests are processed in completion order so bucket starts are
    non-decreasing; an arrival for the current bucket updates the last
    point in place.
    """
    bucket_start = window_start(time, window)
    if series.times and series.times[-1] == bucket_start:
        if value > series.values[-1]:
            series.values[-1] = value
    else:
        series.append(bucket_start, value)
