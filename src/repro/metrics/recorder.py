"""Per-request response-time recording.

The :class:`ResponseTimeRecorder` collects one
:class:`CompletedRequest` per finished request and can answer every
response-time question the paper's figures ask: Table I summary rows,
point-in-time response-time series (Figs. 1 & 3), per-window VLRT
counts (Figs. 2a/6a/7a), and the response-time frequency distribution
(Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AnalysisError
from repro.metrics.stats import VLRT_THRESHOLD, ResponseTimeStats
from repro.metrics.timeseries import TimeSeries
from repro.metrics.windows import PAPER_WINDOW, WindowedCounter, window_start


@dataclass(frozen=True)
class CompletedRequest:
    """One finished request, as seen end-to-end by its client."""

    request_id: int
    interaction: str
    started_at: float
    finished_at: float
    #: How many times the initial packet was dropped and retransmitted.
    retransmissions: int = 0
    #: Which backend (application server) finally served the request.
    served_by: Optional[str] = None

    @property
    def response_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def is_vlrt(self) -> bool:
        return self.response_time > VLRT_THRESHOLD


class ResponseTimeRecorder:
    """Collects completed requests and derives the paper's metrics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.requests: list[CompletedRequest] = []

    def record(self, request: CompletedRequest) -> None:
        """Add one completed request."""
        self.requests.append(request)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def response_times(self) -> list[float]:
        return [r.response_time for r in self.requests]

    def stats(self) -> ResponseTimeStats:
        """Table-I style summary statistics."""
        return ResponseTimeStats.from_samples(self.response_times)

    def point_in_time(self, window: float = PAPER_WINDOW) -> TimeSeries:
        """Max response time per completion window (Figs. 1 & 3).

        Point-in-time response time is plotted against *completion* time
        and uses the worst request in each window so that VLRT spikes
        are visible rather than averaged away.
        """
        ordered = sorted(self.requests, key=lambda r: r.finished_at)
        series = TimeSeries(self.name + ".rt")
        for request in ordered:
            series_append_max(series, request.finished_at, window,
                              request.response_time)
        return series

    def vlrt_windows(self, window: float = PAPER_WINDOW,
                     until: Optional[float] = None) -> TimeSeries:
        """VLRT count per window of completion time (Figs. 2a/6a/7a)."""
        counter = WindowedCounter(window, self.name + ".vlrt")
        for request in self.requests:
            if request.is_vlrt:
                counter.record(request.finished_at)
        return counter.series(until=until)

    def vlrt_requests(self) -> list[CompletedRequest]:
        """All requests that exceeded the VLRT threshold."""
        return [r for r in self.requests if r.is_vlrt]

    def served_by_counts(self, start: float = 0.0,
                         end: float = float("inf")) -> dict[str, int]:
        """How many completions each backend produced in ``[start, end)``.

        This is the per-backend workload distribution check of §II-B.
        """
        counts: dict[str, int] = {}
        for request in self.requests:
            if request.served_by is None:
                continue
            if start <= request.finished_at < end:
                counts[request.served_by] = counts.get(
                    request.served_by, 0) + 1
        return counts

    def retransmitted(self) -> list[CompletedRequest]:
        """Requests that needed at least one retransmission."""
        return [r for r in self.requests if r.retransmissions > 0]


def series_append_max(series: TimeSeries, time: float, window: float,
                      value: float) -> None:
    """Append ``value`` bucketed to ``window``, keeping per-bucket max.

    Requests are processed in completion order so bucket starts are
    non-decreasing; an arrival for the current bucket updates the last
    point in place.
    """
    bucket_start = window_start(time, window)
    if series.times and series.times[-1] == bucket_start:
        if value > series.values[-1]:
            series.values[-1] = value
    else:
        series.append(bucket_start, value)
