"""Shared helpers for the figure/table benchmark harness.

Every benchmark regenerates one paper artifact: it runs the scenario
through ``benchmark.pedantic`` (one round — a full experiment is the
unit of work), prints the same rows/series the paper reports (visible
with ``pytest benchmarks/ --benchmark-only -s``), stores the headline
numbers in ``benchmark.extra_info``, and asserts the paper's *shape* —
who wins, by roughly what factor, where the spikes are.
"""

from __future__ import annotations

import pytest

from repro.cluster.runner import ExperimentResult, ExperimentRunner

#: Seed used by every benchmark (results are deterministic given it).
BENCH_SEED = 20170605
#: Simulated seconds for figure-level runs; long enough for several
#: stall cycles plus the retransmission tail.
FIGURE_DURATION = 12.0


def run_experiment(benchmark, config, label: str) -> ExperimentResult:
    """Execute one experiment inside the benchmark timer."""
    result_box: dict[str, ExperimentResult] = {}

    def work():
        result_box["result"] = ExperimentRunner(config).run()

    benchmark.pedantic(work, rounds=1, iterations=1)
    result = result_box["result"]
    stats = result.stats()
    benchmark.extra_info.update({
        "label": label,
        "requests": stats.count,
        "avg_rt_ms": round(stats.mean_ms, 2),
        "vlrt_pct": round(100 * stats.vlrt_fraction, 3),
        "normal_pct": round(100 * stats.normal_fraction, 2),
        "drops": result.dropped_packets(),
    })
    return result


def first_clean_stall(result: ExperimentResult, after: float = 2.0):
    """First ground-truth stall past the ramp-up."""
    records = [record for record in result.system.millibottleneck_records()
               if record.started_at > after]
    assert records, "scenario produced no millibottlenecks"
    return records[0]


def strongest_funnel_stall(result: ExperimentResult, after: float = 2.0):
    """The stall whose pick-funnel is sharpest, averaged over Apaches.

    The paper zooms into an illustrative window ("we zoom into a period
    in which only Tomcat1 has a millibottleneck"); this helper picks
    the same kind of window programmatically.  For the cumulative
    policies the funnel onset depends on where the stalled member's
    lb_value sat when the stall began, so early stalls can funnel late
    — the sharpest stall is the representative one.
    """
    from repro.analysis.phases import funnel_fraction

    records = [record for record in result.system.millibottleneck_records()
               if record.started_at > after
               and record.ended_at < result.duration - 1.0]
    assert records, "scenario produced no millibottlenecks"

    from repro.analysis.phases import lock_on_fraction

    def score(record):
        window = (record.started_at, record.ended_at)
        fractions = [
            funnel_fraction(balancer, record.host, window)
            + lock_on_fraction(balancer, record.host, window)
            for balancer in result.system.balancers
        ]
        return sum(fractions) / len(fractions)

    return max(records, key=score)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
