"""Fig. 11(a-b) — lb_value traces for total_traffic.

Paper: the total_traffic policy shows the same pattern as
total_request: the candidate experiencing a millibottleneck has the
lowest lb_value (here, accumulated request+response bytes), so all
requests are sent to it until the millibottleneck resolves.

Shape to reproduce: identical qualitative pattern under the byte-based
lb_value.
"""

from test_fig10_lbvalue_total_request import check_lb_pattern


def test_fig11_lb_values_total_traffic(benchmark):
    # The paper only details the recovery peak for total_request
    # (Fig. 10); for total_traffic it asserts the same stall-time
    # pattern ("the candidate experiencing a millibottleneck has the
    # lowest lb_value") without discussing recovery details.
    result, record = check_lb_pattern(
        benchmark, "original_total_traffic", "fig11 total_traffic",
        check_recovery_peak=False)
    # The instability materialises as drops and VLRT, as in Fig. 7.
    assert result.dropped_packets() > 0
    assert result.stats().vlrt_count > 0
