"""Fig. 12 — tier queues under the current_load policy.

Paper: under current_load there is barely any huge spike in the Tomcat
tier, and the Apache tier spikes less than under the stock policies —
queue amplification from the app tier disappears because the balancer
stops feeding the stalled server.

Shape to reproduce: Tomcat-tier peaks bounded near the endpoint-pool
level; Apache-tier peaks a small fraction of the original policy's; no
drops.
"""

from conftest import BENCH_SEED, FIGURE_DURATION, banner, run_experiment

from repro.analysis import tier_series, timeline
from repro.cluster.runner import ExperimentRunner
from repro.cluster.scenarios import policy_run


def test_fig12_current_load_queues(benchmark):
    result = run_experiment(
        benchmark,
        policy_run("current_load", duration=FIGURE_DURATION,
                   seed=BENCH_SEED, trace=False),
        "fig12")
    original = ExperimentRunner(
        policy_run("original_total_request", duration=FIGURE_DURATION,
                   seed=BENCH_SEED, trace=False)).run()

    apache_tier = tier_series(result.queue_series, "apache")
    tomcat_tier = tier_series(result.queue_series, "tomcat")
    mysql_tier = tier_series(result.queue_series, "mysql")
    original_apache = tier_series(original.queue_series, "apache")
    original_tomcat = tier_series(original.queue_series, "tomcat")

    banner("Fig. 12: queued requests under current_load")
    print(timeline(apache_tier, label="apache tier"))
    print(timeline(tomcat_tier, label="tomcat tier"))
    print(timeline(mysql_tier, label="mysql tier"))
    print("tomcat peak: {} (total_request: {});  apache peak: {} "
          "(total_request: {})".format(
              tomcat_tier.max(), original_tomcat.max(),
              apache_tier.max(), original_apache.max()))

    # No huge Tomcat-tier spikes: the scheduling issue is gone.
    assert tomcat_tier.max() < original_tomcat.max()
    assert tomcat_tier.max() < 80
    # The Apache tier no longer amplifies.
    assert apache_tier.max() < original_apache.max() / 3
    assert result.dropped_packets() == 0
    # Millibottlenecks still happened — they just stopped mattering.
    assert len(result.system.millibottleneck_records()) >= 4
