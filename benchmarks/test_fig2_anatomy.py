"""Fig. 2(a-e) — anatomy of a millibottleneck (no load balancer).

Paper: with 1 Apache / 1 Tomcat / 1 MySQL and dirty-page flushing
enabled, VLRT clusters appear; queue peaks in Apache coincide with (a)
Apache's own millibottleneck and (b) push-back waves from Tomcat; CPU
saturations correlate with iowait saturations, which correlate with
abrupt dirty-page drops.

Shape to reproduce: the full causal chain — dirty drop ↔ iowait ↔ CPU
saturation ↔ queue peak ↔ VLRT window — on both hosts.
"""

from conftest import BENCH_SEED, FIGURE_DURATION, banner, run_experiment

from repro.analysis import (
    adaptive_threshold,
    detect,
    drops_of,
    find_peaks,
    match_ground_truth,
    pearson,
    timeline,
)
from repro.cluster.scenarios import single_node_millibottleneck


def test_fig2_millibottleneck_anatomy(benchmark):
    config = single_node_millibottleneck(duration=FIGURE_DURATION,
                                         seed=BENCH_SEED)
    result = run_experiment(benchmark, config, "fig2")

    vlrt = result.vlrt_windows()
    tomcat_cpu = result.cpu_utilization("tomcat1")
    tomcat_iowait = result.iowait("tomcat1")
    tomcat_dirty = result.dirty_series["tomcat1"]

    banner("Fig. 2: VLRT requests caused by flushing dirty pages "
           "(1 Apache / 1 Tomcat / 1 MySQL, no balancer)")
    print(timeline(vlrt, label="(a) VLRT/50ms"))
    print(timeline(result.queue_series["apache1"], label="(b) apache q"))
    print(timeline(result.queue_series["tomcat1"], label="(b) tomcat q"))
    print(timeline(result.queue_series["mysql1"], label="(b) mysql q"))
    print(timeline(tomcat_cpu, label="(c) tomcat cpu"))
    print(timeline(tomcat_iowait, label="(d) tomcat iowait"))
    print(timeline(tomcat_dirty, label="(e) dirty bytes"))

    records = result.system.millibottleneck_records()
    r_dirty_iowait = pearson(drops_of(tomcat_dirty), tomcat_iowait)
    r_iowait_cpu = pearson(tomcat_iowait, tomcat_cpu)
    print("stalls: {}   corr(dirty-drop, iowait)={:.2f}   "
          "corr(iowait, cpu)={:.2f}".format(
              len(records), r_dirty_iowait, r_iowait_cpu))

    # (a) VLRT requests appear without any load balancer.
    assert result.stats().vlrt_count > 0
    # (b) Apache queue peaks coincide with stalls.
    apache_queue = result.queue_series["apache1"]
    peaks = find_peaks(apache_queue, adaptive_threshold(apache_queue),
                       "apache1")
    assert peaks
    for peak in peaks:
        assert any(record.started_at - 0.2 < peak.peak_at
                   < record.ended_at + 0.6 for record in records)
    # (c)+(d) transient CPU saturations are iowait-induced and match
    # ground truth one for one.
    detections = detect("tomcat1", tomcat_cpu, config.sample_window,
                        iowait=tomcat_iowait, dirty=tomcat_dirty)
    tomcat_records = [r for r in records if r.host == "tomcat1"]
    tp, fp, fn = match_ground_truth(detections, tomcat_records)
    assert fn == 0 and fp <= 1
    assert all(d.io_induced and d.flush_induced for d in detections)
    # (e) dirty-page drops line up with iowait saturation.
    assert r_dirty_iowait > 0.5
    assert r_iowait_cpu > 0.5
