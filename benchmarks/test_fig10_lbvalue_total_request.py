"""Fig. 10(a-b) — lb_value traces explain the total_request instability.

Paper: (a) a huge queue peak on the stalled Tomcat; (b) the stalled
candidate holds the *lowest* lb_value throughout the millibottleneck
(which is why everything is sent to it) and the *highest* growth during
recovery (as the accumulated requests finally get processed).

Shape to reproduce: stalled member's lb_value <= every healthy
member's during the stall, and the largest lb_value increase during
recovery — on every Apache.
"""

from conftest import (
    BENCH_SEED,
    FIGURE_DURATION,
    banner,
    run_experiment,
    strongest_funnel_stall,
)

from repro.analysis import peak_growth, segment, timeline
from repro.cluster.scenarios import policy_run


def check_lb_pattern(benchmark, bundle_key, label,
                     check_recovery_peak=True):
    config = policy_run(bundle_key, duration=FIGURE_DURATION,
                        seed=BENCH_SEED)
    result = run_experiment(benchmark, config, label)
    record = strongest_funnel_stall(result)
    phases = segment(record, recovery=0.3)

    banner("{}: lb_values around the {} stall at t={:.2f}s".format(
        label, record.host, record.started_at))
    balancer = result.system.balancers[0]
    for member in balancer.members:
        window = member.lb_trace.slice(record.started_at - 0.3,
                                       record.ended_at + 0.6)
        print(timeline(window, label=member.name))

    # Probe at the stall's end: by then the healthy members' lb_values
    # have pulled ahead on every Apache regardless of where the stalled
    # member's value sat when the flush began.
    probe = record.ended_at
    recovery_start, recovery_end = phases.recovery
    for balancer in result.system.balancers:
        # (b) lowest lb_value during the stall...
        values = {member.name: member.lb_trace.value_at(probe)
                  for member in balancer.members}
        stalled_value = values.pop(record.host)
        assert stalled_value <= min(values.values()), balancer.name
        # ...and (for the request-count policy, whose recovery burst
        # Fig. 10(b) narrates as the "red peak") the sharpest lb_value
        # jump during recovery: the stuck requests flush through in a
        # burst, so the stalled member's peak growth rate towers over
        # the healthy members' steady rotation increments.
        if check_recovery_peak:
            rates = {
                member.name: peak_growth(member.lb_trace, recovery_start,
                                         recovery_end + 0.3)
                for member in balancer.members
            }
            assert max(rates, key=rates.get) == record.host, balancer.name
    return result, record


def test_fig10_lb_values_total_request(benchmark):
    result, record = check_lb_pattern(
        benchmark, "original_total_request", "fig10 total_request")
    # (a) the stalled Tomcat's queue spikes well above normal.
    queue = result.queue_series[record.host]
    stall_peak = queue.slice(record.started_at,
                             record.ended_at + 0.3).max()
    normal = queue.slice(1.5, record.started_at - 0.5).mean()
    assert stall_peak > 4 * max(normal, 1.0)
