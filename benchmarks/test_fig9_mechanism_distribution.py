"""Fig. 9(a-b) — workload distribution with modified get_endpoint.

Paper: with the mechanism-level remedy, during the period in which one
Tomcat has the millibottleneck, all requests are routed to the Tomcats
*without* millibottlenecks; the stalled Tomcat's queue peak is a
quarter of the original's.

Shape to reproduce: ~zero dispatches to the stalled member during its
stall (beyond the pool-bounded first wave), healthy members carrying
the full load.
"""

from conftest import (
    BENCH_SEED,
    FIGURE_DURATION,
    banner,
    first_clean_stall,
    run_experiment,
)

from repro.analysis import distribution_by_phase, segment, timeline
from repro.cluster.scenarios import policy_run


def test_fig9_distribution_with_modified_get_endpoint(benchmark):
    config = policy_run("total_request_modified",
                        duration=FIGURE_DURATION, seed=BENCH_SEED)
    result = run_experiment(benchmark, config, "fig9")
    record = first_clean_stall(result)
    phases = segment(record)

    banner("Fig. 9: workload distribution, total_request + modified "
           "get_endpoint ({} stalled)".format(record.host))
    print(timeline(result.queue_series[record.host],
                   label="(a) {} q".format(record.host)))
    balancer = result.system.balancers[0]
    for phase_name, counts in distribution_by_phase(
            balancer, phases).items():
        print("(b) {:16s} {}".format(phase_name, counts))

    # During the stall (past the first pool-bounded wave), dispatches
    # avoid the stalled member on every Apache.
    window = (record.started_at + 0.05, record.ended_at)
    for balancer in result.system.balancers:
        counts = balancer.distribution_between(*window)
        healthy = sum(count for name, count in counts.items()
                      if name != record.host)
        assert healthy > 5
        assert counts[record.host] <= max(2, 0.1 * healthy)
    # No request was lost anywhere.
    assert result.dropped_packets() == 0
