"""Fig. 1 — point-in-time response time without millibottlenecks.

Paper: total_request in a millibottleneck-free environment achieves
3.2 ms average response time with 13 VLRT requests out of 1.8 M, and a
flat point-in-time response-time plot.

Shape to reproduce: single-digit-ms average, essentially zero VLRT, no
response-time spikes.
"""

from conftest import BENCH_SEED, FIGURE_DURATION, banner, run_experiment

from repro.analysis import timeline
from repro.cluster.scenarios import baseline_no_millibottleneck


def test_fig1_baseline_point_in_time_rt(benchmark):
    config = baseline_no_millibottleneck(duration=FIGURE_DURATION,
                                         seed=BENCH_SEED)
    result = run_experiment(benchmark, config, "fig1")
    stats = result.stats()
    rt = result.point_in_time_rt()

    banner("Fig. 1: point-in-time response time, total_request, "
           "no millibottlenecks")
    print(timeline(rt, label="response time", unit=" s"))
    print("average RT: {:.2f} ms (paper: 3.2 ms)".format(stats.mean_ms))
    print("VLRT count: {} of {} (paper: 13 of 1.8 M)".format(
        stats.vlrt_count, stats.count))

    # Shape: flat and fast.
    assert stats.mean_ms < 10.0
    assert stats.vlrt_count == 0
    assert rt.max() < 0.1
    assert result.system.millibottleneck_records() == []
