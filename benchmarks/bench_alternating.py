"""Measure one kernel on the four microbenchmark workloads.

This is the measurement half of the BENCH_kernel.json regeneration
recipe: run it alternately with ``PYTHONPATH`` pointing at the seed
worktree and at the current tree, several times, and take the
per-workload best of each side.  Alternating whole processes (rather
than measuring each kernel once) cancels the slow drift of a shared
measurement host; best-of-N inside each process cancels the fast
jitter.

Usage::

    git worktree add /tmp/seedwt dd9ee6e
    for i in 1 2 3 4; do
        PYTHONPATH=/tmp/seedwt/src python benchmarks/bench_alternating.py
        PYTHONPATH=src           python benchmarks/bench_alternating.py
    done

Prints one JSON object of ``workload -> best events/sec`` per run.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.sim.core import Environment  # noqa: E402  (PYTHONPATH selects kernel)

import test_kernel_throughput as bench  # noqa: E402

ROUNDS = int(sys.argv[1]) if len(sys.argv) > 1 else 3


def main() -> None:
    results: dict[str, float] = {}
    for _ in range(ROUNDS):
        # Round-robin the workloads inside each round so drift hits all
        # four equally instead of biasing whichever ran last.
        for workload in bench.WORKLOADS:
            env = Environment()
            workload(env, bench.N_EVENTS)
            start = time.perf_counter()
            env.run()
            elapsed = time.perf_counter() - start
            eps = env._eid / elapsed
            name = workload.__name__
            if eps > results.get(name, 0.0):
                results[name] = eps
    print(json.dumps(results))


if __name__ == "__main__":
    main()
