"""Fig. 13(a-b) — workload distribution under current_load.

Paper: during the period in which one Tomcat has a millibottleneck,
the current_load policy sends all requests to the available candidates
instead of the stalled one; fewer than 40 requests ever queue at the
stalled Tomcat.

Shape to reproduce: a small queue bump on the stalled member; during
the stall the overwhelming majority of dispatches target healthy
members, on every Apache.
"""

from conftest import (
    BENCH_SEED,
    FIGURE_DURATION,
    banner,
    first_clean_stall,
    run_experiment,
)

from repro.analysis import distribution_by_phase, segment, timeline
from repro.cluster.scenarios import policy_run


def test_fig13_current_load_distribution(benchmark):
    config = policy_run("current_load", duration=FIGURE_DURATION,
                        seed=BENCH_SEED)
    result = run_experiment(benchmark, config, "fig13")
    record = first_clean_stall(result)
    phases = segment(record)

    banner("Fig. 13: workload distribution under current_load "
           "({} stalled)".format(record.host))
    print(timeline(result.queue_series[record.host],
                   label="(a) {} q".format(record.host)))
    balancer = result.system.balancers[0]
    for phase_name, counts in distribution_by_phase(
            balancer, phases).items():
        print("(b) {:16s} {}".format(phase_name, counts))

    # (a) the stalled Tomcat's queue stays small (paper: < 40).
    stall_queue = result.queue_series[record.host].slice(
        record.started_at, record.ended_at + 0.3)
    assert stall_queue.max() < 40
    # (b) requests route to the healthy candidates during the stall.
    window = (record.started_at + 0.05, record.ended_at)
    for balancer in result.system.balancers:
        counts = balancer.distribution_between(*window)
        total = sum(counts.values())
        assert total > 0
        assert counts[record.host] / total < 0.2
    assert result.dropped_packets() == 0
