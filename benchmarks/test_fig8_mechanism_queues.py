"""Fig. 8 — tier queues under total_request with modified get_endpoint.

Paper: the mechanism-level remedy cuts the queued requests by 75 %
relative to the original total_request policy, because requests stop
being sent to (and stuck waiting on) the stalled Tomcat.

Shape to reproduce: web-tier queue peaks collapse (ours: >3x smaller),
packet drops disappear, and the app-tier peak shrinks.
"""

from conftest import BENCH_SEED, FIGURE_DURATION, banner, run_experiment

from repro.analysis import tier_series, timeline
from repro.cluster.scenarios import policy_run


def test_fig8_queues_with_modified_get_endpoint(benchmark):
    remedied = run_experiment(
        benchmark,
        policy_run("total_request_modified", duration=FIGURE_DURATION,
                   seed=BENCH_SEED, trace=False),
        "fig8")
    # Reference run (outside the timed region): the original mechanism.
    from repro.cluster.runner import ExperimentRunner
    original = ExperimentRunner(
        policy_run("original_total_request", duration=FIGURE_DURATION,
                   seed=BENCH_SEED, trace=False)).run()

    remedied_apache = tier_series(remedied.queue_series, "apache")
    original_apache = tier_series(original.queue_series, "apache")
    remedied_tomcat = tier_series(remedied.queue_series, "tomcat")
    original_tomcat = tier_series(original.queue_series, "tomcat")

    banner("Fig. 8: queued requests with modified get_endpoint "
           "(total_request)")
    print(timeline(original_apache, label="apache (orig)"))
    print(timeline(remedied_apache, label="apache (fixed)"))
    print(timeline(original_tomcat, label="tomcat (orig)"))
    print(timeline(remedied_tomcat, label="tomcat (fixed)"))
    reduction = 1 - remedied_apache.max() / original_apache.max()
    print("web-tier peak reduction: {:.0%} (paper: 75% fewer queued "
          "requests)".format(reduction))

    # The paper reports queued requests cut by 75%; in our scaled model
    # the web tier dominates that count (app-tier inflow is bounded by
    # the endpoint pools in both runs, so its peaks are comparable).
    assert remedied_apache.max() < original_apache.max() / 3
    combined_remedied = remedied_apache.max() + remedied_tomcat.max()
    combined_original = original_apache.max() + original_tomcat.max()
    assert combined_remedied < 0.5 * combined_original
    assert remedied.dropped_packets() == 0
    assert original.dropped_packets() > 0
