"""Request-tracing overhead: zero when off, bounded when on.

Two measurements guard the tracing contract:

* **disabled** — the kernel dispatch loop never reads
  ``Environment.tracer``, so with tracing off the kernel must still
  clear the same throughput floor as ``test_kernel_throughput`` (the
  committed seed baseline).  A >=2% kernel regression would show up
  here as a ratio drop long before it hit the floor.
* **enabled** — tracing is opt-in observation; the full-stack scenario
  pays for span construction, but the event schedule is identical
  (pinned by the golden-hash tests) and results match exactly.  The
  measured overhead is recorded next to the committed datapoint in
  ``BENCH_kernel.json`` (key ``tracing``).
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

# pytest inserts this directory on sys.path (no package __init__), so
# the sibling benchmark module imports by its flat name.
from test_kernel_throughput import (
    MIN_RATIO,
    _baseline,
    _events_per_sec,
    timeout_chain,
)
from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig, ExperimentRunner

#: Upper bound on traced-vs-untraced wall time for the full scenario.
#: The round-2 tracer measures ~1.26x (see BENCH_kernel.json round2);
#: 1.6x leaves noise room on shared runners while still failing if the
#: inlined span construction path regresses toward the seed's 1.48x
#: plus drift.
MAX_TRACED_RATIO = 1.6


def scenario_config(trace_requests: bool) -> ExperimentConfig:
    profile = replace(ScaleProfile.smoke(), clients=120,
                      flush_threshold_bytes=32e3)
    return ExperimentConfig(
        bundle_key="current_load", profile=profile, duration=6.0,
        seed=99, trace_lb_values=False, trace_dispatches=False,
        trace_requests=trace_requests)


def _best_wall_time_pair(rounds: int = 4):
    """Interleaved untraced/traced runs, best wall time of each.

    Alternating the two variants inside one loop (instead of timing
    all untraced runs and then all traced runs) cancels host-speed
    drift between the two measurements — the ratio of bests is what
    the overhead bound asserts, and drift shows up identically in
    both numerators.
    """
    best_untraced = best_traced = float("inf")
    untraced = traced = None
    for _ in range(rounds):
        start = time.perf_counter()
        untraced = ExperimentRunner(scenario_config(False)).run()
        best_untraced = min(best_untraced, time.perf_counter() - start)
        start = time.perf_counter()
        traced = ExperimentRunner(scenario_config(True)).run()
        best_traced = min(best_traced, time.perf_counter() - start)
    return best_untraced, untraced, best_traced, traced


def test_kernel_throughput_unaffected_with_tracing_off(benchmark):
    """Fresh environments default to ``tracer=None``; the dispatch loop
    must still clear the committed seed-kernel throughput floor."""
    box = {}

    def work():
        box["eps"], box["events"] = _events_per_sec(timeout_chain)

    benchmark.pedantic(work, rounds=1, iterations=1)
    baseline = _baseline()["events_per_sec"]["timeout_chain"]
    ratio = box["eps"] / baseline
    benchmark.extra_info.update({
        "events_per_sec": round(box["eps"]),
        "speedup_vs_seed_baseline": round(ratio, 3),
    })
    print("tracing off: {:,.0f} events/s ({:.2f}x seed baseline)".format(
        box["eps"], ratio))
    assert ratio >= MIN_RATIO


def test_traced_scenario_overhead_is_bounded(benchmark):
    """Full-stack scenario, tracing on vs off: identical results, and
    the span-construction cost stays within the documented bound."""
    box = {}

    def work():
        (box["untraced_s"], box["untraced"],
         box["traced_s"], box["traced"]) = _best_wall_time_pair()

    benchmark.pedantic(work, rounds=1, iterations=1)
    untraced, traced = box["untraced"], box["traced"]
    ratio = box["traced_s"] / box["untraced_s"]
    benchmark.extra_info.update({
        "untraced_wall_s": round(box["untraced_s"], 4),
        "traced_wall_s": round(box["traced_s"], 4),
        "traced_over_untraced": round(ratio, 3),
        "traces": len(traced.traces()),
    })
    print("scenario: untraced {:.3f}s, traced {:.3f}s ({:.2f}x, "
          "{} traces)".format(box["untraced_s"], box["traced_s"], ratio,
                              len(traced.traces())))
    # Pure observation: identical results either way.
    assert traced.stats().count == untraced.stats().count
    assert traced.stats().mean == pytest.approx(untraced.stats().mean)
    assert traced.dropped_packets() == untraced.dropped_packets()
    assert ratio < MAX_TRACED_RATIO
