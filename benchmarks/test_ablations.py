"""Ablations: the design choices DESIGN.md §5 calls out.

These go beyond the paper's figures: they sweep the knobs that the
paper fixes, to show *why* the instability has the shape it has —
how long the original mechanism's polling matters, when drops start,
which policy families inherit the funnel, and whether the remedies
generalise to other millibottleneck sources (the conclusion's claim).
"""

from dataclasses import replace

import numpy as np
from conftest import BENCH_SEED, banner

from repro.analysis import table
from repro.cluster import ScaleProfile, build_system
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.core import BalancerConfig, OriginalGetEndpoint, make_policy
from repro.netmodel import RetransmissionPolicy
from repro.osmodel import GarbageCollectionSource, MillibottleneckProfile
from repro.sim import Environment
from repro.workload import ClientPopulation, read_write_mix

DURATION = 10.0


def run_config(config: ExperimentConfig):
    return ExperimentRunner(config).run()


def custom_run(policy_name: str, mechanism_factory, duration=DURATION,
               seed=BENCH_SEED, profile: ScaleProfile | None = None,
               millibottlenecks=True, stall_source=None):
    """Run outside ExperimentRunner for full knob control."""
    env = Environment()
    rng = np.random.default_rng(seed)
    profile = profile or ScaleProfile()
    system = build_system(
        env, profile, rng=rng,
        tomcat_millibottlenecks=millibottlenecks,
        policy_factory=lambda: make_policy(policy_name),
        mechanism_factory=mechanism_factory,
        balancer_config=BalancerConfig(
            pool_size=profile.connection_pool_size,
            trace_lb_values=False, trace_dispatches=False),
    )
    if stall_source is not None:
        for tomcat in system.tomcats:
            stall_source(tomcat.host, rng)
    population = ClientPopulation(
        env, [apache.socket for apache in system.apaches],
        total_clients=profile.clients, mix=read_write_mix(), rng=rng,
        think_time=profile.think_time,
        retransmission=RetransmissionPolicy())
    env.run(until=duration)
    stats = population.recorder.stats()
    drops = sum(apache.socket.dropped for apache in system.apaches)
    return stats, drops, system


def test_ablation_cache_acquire_timeout(benchmark):
    """Sweep mod_jk's cache_acquire_timeout under total_request.

    The poll timeout bounds how long a worker stays stuck on a stalled
    candidate.  A timeout of ~0 behaves like the modified mechanism
    (fail fast); the default 300 ms spans the whole stall and feeds the
    funnel.
    """
    timeouts = [0.001, 0.1, 0.3, 0.6]
    rows_box = {}

    def work():
        rows = []
        for timeout in timeouts:
            stats, drops, _ = custom_run(
                "total_request",
                lambda t=timeout: OriginalGetEndpoint(
                    cache_acquire_timeout=t, jk_sleep=min(0.1, t)),
            )
            rows.append([
                "{:.0f} ms".format(1000 * timeout),
                "{:.2f}".format(stats.mean_ms),
                "{:.2f}%".format(100 * stats.vlrt_fraction),
                drops,
            ])
        rows_box["rows"] = rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    rows = rows_box["rows"]
    banner("Ablation: cache_acquire_timeout sweep (total_request)")
    print(table(["timeout", "avg RT (ms)", "%VLRT", "drops"], rows))

    fail_fast = float(rows[0][1])
    stock = float(rows[2][1])
    # Fail-fast polling behaves like the remedy; the stock 300 ms
    # timeout is an order of magnitude worse.
    assert fail_fast * 5 < stock
    # At or beyond the default, polling already spans the stall, so
    # going longer cannot help.
    assert float(rows[3][1]) > fail_fast * 5


def test_ablation_stall_duration(benchmark):
    """Sweep millibottleneck duration via write-back bandwidth.

    Shorter stalls (faster disk) are absorbed by the web tier's free
    workers and backlog; beyond the absorption capacity, drops and
    VLRT appear and grow.
    """
    bandwidths = [40e6, 16e6, 8e6, 5e6]
    rows_box = {}

    def work():
        rows = []
        for bandwidth in bandwidths:
            profile = replace(ScaleProfile(),
                              tomcat_disk_bandwidth=bandwidth)
            stats, drops, system = custom_run(
                "total_request", OriginalGetEndpoint, profile=profile)
            stalls = [r.duration for r in system.millibottleneck_records()]
            mean_stall = float(np.mean(stalls)) if stalls else 0.0
            rows.append([
                "{:.0f} MB/s".format(bandwidth / 1e6),
                "{:.0f} ms".format(1000 * mean_stall),
                "{:.2f}%".format(100 * stats.vlrt_fraction),
                drops,
            ])
        rows_box["rows"] = rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    rows = rows_box["rows"]
    banner("Ablation: stall duration (via write-back bandwidth)")
    print(table(["disk bw", "mean stall", "%VLRT", "drops"], rows))

    drops_by_row = [row[3] for row in rows]
    # Fast disk -> short stalls -> no drops; slow disk -> long stalls
    # -> heavy drops.  Monotone in between.
    assert drops_by_row[0] == 0
    assert drops_by_row[-1] > 100
    assert drops_by_row[-1] >= drops_by_row[-2] >= drops_by_row[0]


def test_ablation_policy_zoo(benchmark):
    """Which policy families inherit the instability?

    Cumulative policies (total_request/total_traffic) funnel; policies
    ranking by instantaneous state (current_load, two_choices, round
    robin, random) do not — they keep spreading load regardless of a
    frozen member's history.
    """
    policies = ["total_request", "total_traffic", "current_load",
                "round_robin", "random", "two_choices", "ewma_latency"]
    rows_box = {}

    def work():
        rows = []
        for name in policies:
            stats, drops, _ = custom_run(name, OriginalGetEndpoint)
            rows.append([name, "{:.2f}".format(stats.mean_ms),
                         "{:.2f}%".format(100 * stats.vlrt_fraction),
                         drops])
        rows_box["rows"] = rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    rows = rows_box["rows"]
    banner("Ablation: policy zoo under millibottlenecks "
           "(original mechanism)")
    print(table(["policy", "avg RT (ms)", "%VLRT", "drops"], rows))

    by_name = {row[0]: float(row[1]) for row in rows}
    drops_by_name = {row[0]: row[3] for row in rows}
    # The cumulative family funnels...
    for cumulative in ("total_request", "total_traffic"):
        assert drops_by_name[cumulative] > 100
    # ...every instantaneous-state policy does not.
    for instantaneous in ("current_load", "round_robin", "random",
                          "two_choices"):
        assert drops_by_name[instantaneous] < drops_by_name["total_request"] / 4
        assert by_name[instantaneous] < by_name["total_request"] / 3


def test_ablation_other_millibottleneck_sources(benchmark):
    """The conclusion's generalisation: remedies help against
    millibottlenecks from *other* resource shortages (here GC pauses),
    not just dirty-page flushing."""
    rows_box = {}

    def gc(host, rng):
        return GarbageCollectionSource(host, rng, period=4.0,
                                       mean_pause=0.20)

    def work():
        rows = []
        for policy in ("total_request", "current_load"):
            stats, drops, system = custom_run(
                policy, OriginalGetEndpoint,
                millibottlenecks=False,  # no flushing...
                stall_source=gc)         # ...GC pauses instead
            rows.append([policy, len(system.millibottleneck_records()),
                         "{:.2f}".format(stats.mean_ms),
                         "{:.2f}%".format(100 * stats.vlrt_fraction),
                         drops])
        rows_box["rows"] = rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    rows = rows_box["rows"]
    banner("Ablation: GC-pause millibottlenecks (no flushing at all)")
    print(table(["policy", "stalls", "avg RT (ms)", "%VLRT", "drops"],
                rows))

    total_request, current_load = rows
    assert total_request[1] > 0          # GC stalls occurred
    assert total_request[4] > 0          # and the stock policy drops
    assert current_load[4] < total_request[4] / 4
    assert float(current_load[2]) < float(total_request[2]) / 3


def test_ablation_bursty_workload_negative_control(benchmark):
    """Bursty arrivals without any millibottleneck: a negative control.

    §III-A lists bursty workloads among VLRT causes.  An arrival burst
    loads *every* backend at once, so there is no single stalled member
    for the balancer to funnel into — the scheduling instability needs
    an asymmetric stall.  Expect: bursts may create drops/VLRT, but the
    cumulative and instantaneous policies now behave *similarly*
    (within a small factor), unlike under millibottlenecks.
    """
    from repro.workload import BurstProfile, OpenLoopGenerator

    profile = ScaleProfile()
    burst = BurstProfile(base_rate=50, burst_rate=4000,
                         burst_duration=0.15, quiet_duration=2.0)
    rows_box = {}

    def run_policy(policy_name):
        env = Environment()
        rng = np.random.default_rng(BENCH_SEED)
        system = build_system(
            env, profile, rng=rng,
            tomcat_millibottlenecks=False,  # no stalls at all
            policy_factory=lambda: make_policy(policy_name),
            mechanism_factory=OriginalGetEndpoint,
            balancer_config=BalancerConfig(
                pool_size=profile.connection_pool_size,
                trace_lb_values=False, trace_dispatches=False),
        )
        generators = [
            OpenLoopGenerator(env, apache.socket, read_write_mix(),
                              burst, rng)
            for apache in system.apaches
        ]
        env.run(until=DURATION)
        recorders = [generator.recorder for generator in generators]
        times = [rt for recorder in recorders
                 for rt in recorder.response_times]
        drops = sum(apache.socket.dropped for apache in system.apaches)
        mean_ms = 1000 * float(np.mean(times))
        vlrt = sum(1 for rt in times if rt > 1.0)
        return mean_ms, vlrt, len(times), drops

    def work():
        rows_box["total_request"] = run_policy("total_request")
        rows_box["current_load"] = run_policy("current_load")

    benchmark.pedantic(work, rounds=1, iterations=1)
    banner("Ablation: bursty open-loop workload, no millibottlenecks "
           "(negative control)")
    rows = []
    for name, (mean_ms, vlrt, count, drops) in rows_box.items():
        rows.append([name, count, "{:.2f}".format(mean_ms), vlrt, drops])
    print(table(["policy", "requests", "avg RT (ms)", "VLRT", "drops"],
                rows))

    tr_mean, tr_vlrt, _, _ = rows_box["total_request"]
    cl_mean, cl_vlrt, _, _ = rows_box["current_load"]
    # Without an asymmetric stall there is no funnel: the two policy
    # families perform comparably (no order-of-magnitude gap).
    assert tr_mean < 5 * cl_mean
    assert cl_mean < 5 * tr_mean


def test_ablation_scale_invariance(benchmark):
    """DESIGN.md §2's scaling claim: the phenomena survive population
    scaling because limits scale along.

    Run the same policy at 0.75x, 1.0x and 1.5x scale and check the
    VLRT fraction stays in the same regime (within a factor of ~3),
    rather than vanishing or exploding.
    """
    factors = [0.75, 1.0, 1.5]
    rows_box = {}

    def work():
        rows = []
        for factor in factors:
            profile = ScaleProfile().scaled(factor)
            stats, drops, _ = custom_run(
                "total_request", OriginalGetEndpoint, profile=profile,
                duration=12.0)
            rows.append([
                "{:.2f}x".format(factor), profile.clients,
                "{:.2f}".format(stats.mean_ms),
                100 * stats.vlrt_fraction, drops])
        rows_box["rows"] = rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    rows = rows_box["rows"]
    banner("Ablation: scale invariance of the instability")
    print(table(["scale", "clients", "avg RT (ms)", "%VLRT", "drops"],
                [[r[0], r[1], r[2], "{:.2f}%".format(r[3]), r[4]]
                 for r in rows]))

    vlrt_fractions = [row[3] for row in rows]
    # The instability is present at every scale...
    assert all(fraction > 0.5 for fraction in vlrt_fractions)
    # ...and stays in the same regime (no order-of-magnitude drift).
    assert max(vlrt_fractions) < 3.5 * min(vlrt_fractions)
