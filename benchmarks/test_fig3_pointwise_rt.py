"""Fig. 3 — point-in-time response time of the stock policies.

Paper: under both total_request and total_traffic, the point-in-time
response time fluctuates violently, with spikes of one second and
more, even though the whole-run averages look acceptable (<100 ms).

Shape to reproduce: multi-second spikes against a milliseconds
baseline for both policies.
"""

from conftest import BENCH_SEED, FIGURE_DURATION, banner, run_experiment

from repro.analysis import timeline
from repro.cluster.scenarios import policy_run


def run_policy(benchmark, key):
    config = policy_run(key, duration=FIGURE_DURATION, seed=BENCH_SEED,
                        trace=False)
    return run_experiment(benchmark, config, "fig3:" + key)


def check_fluctuation(result, key):
    stats = result.stats()
    rt = result.point_in_time_rt()
    print(timeline(rt, label=key, unit=" s"))
    print("  avg {:.1f} ms, max {:.2f} s".format(stats.mean_ms, rt.max()))
    # Acceptable average, violent spikes: the paper's core observation
    # that averages hide the long tail.
    assert stats.mean_ms < 150.0
    assert rt.max() > 1.0
    assert rt.max() > 100 * stats.median


def test_fig3_total_request(benchmark):
    banner("Fig. 3: point-in-time response time (total_request)")
    check_fluctuation(run_policy(benchmark, "original_total_request"),
                      "total_request")


def test_fig3_total_traffic(benchmark):
    banner("Fig. 3: point-in-time response time (total_traffic)")
    check_fluctuation(run_policy(benchmark, "original_total_traffic"),
                      "total_traffic")
