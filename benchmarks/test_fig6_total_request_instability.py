"""Fig. 6(a-c) — total_request instability during a millibottleneck.

Paper: (a) VLRT requests cluster in 50 ms windows around the stall;
(b) the stalled Tomcat's transient CPU saturation coincides with its
queue peak; (c) the workload-distribution plot shows all requests
routed to the stalled Tomcat during the millibottleneck, with a
four-phase pattern (normal / funnel / recovery / normal).

Shape to reproduce: the funnel — during the stall, the overwhelming
majority of scheduling decisions target the stalled member on every
Apache — plus VLRT windows and CPU/queue coincidence.
"""

from conftest import (
    BENCH_SEED,
    FIGURE_DURATION,
    banner,
    run_experiment,
    strongest_funnel_stall,
)

from repro.analysis import (
    funnel_fraction,
    lock_on_fraction,
    segment,
    timeline,
)
from repro.cluster.scenarios import policy_run


def check_instability(benchmark, bundle_key, label):
    config = policy_run(bundle_key, duration=FIGURE_DURATION,
                        seed=BENCH_SEED)
    result = run_experiment(benchmark, config, label)
    record = strongest_funnel_stall(result)
    phases = segment(record)

    banner("{}: instability around the {} stall at t={:.2f}s".format(
        label, record.host, record.started_at))
    print(timeline(result.vlrt_windows(), label="(a) VLRT/50ms"))
    print(timeline(result.cpu_utilization(record.host),
                   label="(b) {} cpu".format(record.host)))
    print(timeline(result.queue_series[record.host],
                   label="(b) {} q".format(record.host)))
    stall_window = (record.started_at, record.ended_at)
    for balancer in result.system.balancers:
        fraction = funnel_fraction(balancer, record.host, stall_window)
        lock_on = lock_on_fraction(balancer, record.host, stall_window)
        print("(c) {}: {:.0%} of stall-window picks -> stalled {}; "
              "lock-on tail {:.0%}".format(
                  balancer.name, fraction, record.host, lock_on))

    # (a) VLRT requests appear, concentrated after stalls.
    assert result.stats().vlrt_count > 0
    # (b) the stalled host saturates during the stall.
    cpu = result.cpu_utilization(record.host)
    mid = (record.started_at + record.ended_at) / 2
    assert cpu.value_at(mid - 0.025) > 0.9
    # (c) the funnel: on every Apache the stalled member draws the
    # plurality of stall-window picks, and once its endpoints exhaust,
    # the tail of the pick sequence targets it exclusively — followed
    # by total starvation as every worker gets stuck on it.
    for balancer in result.system.balancers:
        counts = balancer.picks_between(*stall_window)
        stalled_count = counts.pop(record.host)
        assert stalled_count >= max(counts.values()), balancer.name
        assert lock_on_fraction(balancer, record.host,
                                stall_window) > 0.8, balancer.name
    # ...and the distribution is even again after recovery.
    for balancer in result.system.balancers:
        after = balancer.distribution_between(*phases.normal_after)
        assert all(count > 0 for count in after.values())
    return result


def test_fig6_total_request_instability(benchmark):
    check_instability(benchmark, "original_total_request",
                      "fig6 total_request")
