"""Fig. 4 — frequency of requests by response time.

Paper: the response-time distribution under the stock policies is
bimodal — the bulk of requests finish in milliseconds, and three VLRT
clusters sit near 1 s, 2 s and 3 s (TCP retransmission periods).

Shape to reproduce: dominant sub-10 ms mass; a non-empty 1 s cluster;
cluster sizes non-increasing with retransmission count.
"""

from conftest import BENCH_SEED, banner, run_experiment

from repro.analysis import histogram
from repro.cluster.scenarios import policy_run
from repro.metrics import ResponseTimeDistribution

#: Longer horizon so second/third retransmissions complete in-window.
DURATION = 16.0


def test_fig4_response_time_distribution(benchmark):
    config = policy_run("original_total_request", duration=DURATION,
                        seed=BENCH_SEED, trace=False)
    result = run_experiment(benchmark, config, "fig4")

    dist = ResponseTimeDistribution(low=0.001, high=8.0,
                                    buckets_per_decade=8)
    dist.add_all(result.recorder.response_times)
    clusters = dist.vlrt_clusters(targets=(1.0, 2.0, 3.0))

    banner("Fig. 4: frequency of requests by response time "
           "(total_request)")
    print(histogram(dist.rows()))
    print("VLRT clusters: 1s={} 2s={} 3s={} (paper: 3 clusters at "
          "1 s/2 s/3 s)".format(clusters[1.0], clusters[2.0],
                                clusters[3.0]))

    fast_mass = dist.mass_between(0.001, 0.010)
    assert fast_mass > 0.5 * dist.total       # milliseconds dominate
    assert clusters[1.0] > 0                  # first retransmit cluster
    assert clusters[1.0] >= clusters[2.0]     # decaying with retries
    assert clusters[2.0] >= clusters[3.0]
    # Retransmission is the cause: VLRT requests carry retransmissions.
    vlrt = result.recorder.vlrt_requests()
    assert sum(1 for r in vlrt if r.retransmissions > 0) > 0.9 * len(vlrt)
