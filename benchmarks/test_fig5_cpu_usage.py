"""Fig. 5 — average CPU usage of every server under the stock policies.

Paper: VLRT requests appear although all servers run at moderately low
utilisation — the highest average CPU among the nine servers is 45 %.

Shape to reproduce: every server's whole-run average CPU below ~55 %,
web tier busiest, VLRT nonetheless present.
"""

from conftest import BENCH_SEED, FIGURE_DURATION, banner, run_experiment

from repro.analysis import table
from repro.cluster.scenarios import policy_run


def test_fig5_average_cpu(benchmark):
    config = policy_run("original_total_request", duration=FIGURE_DURATION,
                        seed=BENCH_SEED, trace=False)
    result = run_experiment(benchmark, config, "fig5")
    cpu = result.average_cpu()

    banner("Fig. 5: average CPU usage per server (total_request)")
    print(table(["server", "avg CPU"],
                [[name, "{:.1f}%".format(100 * value)]
                 for name, value in sorted(cpu.items())]))
    print("max: {:.1f}% (paper: 45%)".format(100 * max(cpu.values())))

    # All moderate — the perplexing part of the VLRT problem.
    assert max(cpu.values()) < 0.55
    # And yet the long tail exists.
    assert result.stats().vlrt_fraction > 0.005
    # The app tier (which does the dynamic-page work and suffers the
    # millibottlenecks) is busier than the database.
    tomcat_avg = sum(v for k, v in cpu.items() if k.startswith("tomcat")) / 4
    assert tomcat_avg > cpu["mysql1"]
