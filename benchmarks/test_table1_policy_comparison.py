"""Table I — the six policy/mechanism combinations, head to head.

Paper (Table I, 1.8 M requests each):

    Original total_request                 41.00 ms   5.33% VLRT
    Original total_traffic                 55.50 ms   6.89% VLRT
    Current_load                            3.62 ms   0.21% VLRT
    Total_request + modified get_endpoint   4.87 ms   0.55% VLRT
    Total_traffic + modified get_endpoint   5.87 ms   0.76% VLRT
    Current_load  + modified get_endpoint   3.60 ms   0.20% VLRT

Shape to reproduce: each remedy (policy-level or mechanism-level)
independently collapses both the average response time (paper: ~12x)
and the VLRT percentage (paper: >95 % of VLRT gone); total_traffic is
no better than total_request; combining both remedies adds nothing.
"""

from conftest import BENCH_SEED, banner

from repro.analysis import (
    improvement_factors,
    shape_check,
    table1,
    table1_with_paper,
)
from repro.cluster.runner import compare_policies
from repro.core.remedies import TABLE1_BUNDLES

#: Longer run than the figure benches: Table I is the headline number.
DURATION = 16.0


def test_table1_policy_comparison(benchmark):
    results_box = {}

    def work():
        results_box["results"] = compare_policies(
            [bundle.key for bundle in TABLE1_BUNDLES],
            duration=DURATION, seed=BENCH_SEED)

    benchmark.pedantic(work, rounds=1, iterations=1)
    results = results_box["results"]

    banner("Table I: policy/mechanism comparison ({} simulated seconds "
           "per run)".format(DURATION))
    print(table1(results))
    print()
    print(table1_with_paper(results))
    factors = improvement_factors(results)
    print()
    print("avg-RT improvement vs original total_request "
          "(paper: 12x for current_load):")
    for key, factor in factors.items():
        print("  {:32s} {:6.1f}x".format(key, factor))

    for result in results:
        row = result.table1_row()
        benchmark.extra_info[result.config.bundle_key] = row

    checks = shape_check(results)
    assert all(checks.values()), checks

    by_key = {r.config.bundle_key: r.stats() for r in results}
    # The stock policies exhibit a serious long tail...
    assert by_key["original_total_request"].vlrt_fraction > 0.01
    assert by_key["original_total_traffic"].vlrt_fraction > 0.01
    # ...which each remedy removes almost entirely (paper: >95 %).
    for remedied in ("current_load", "total_request_modified",
                     "total_traffic_modified", "current_load_modified"):
        assert (by_key[remedied].vlrt_fraction
                < 0.05 * by_key["original_total_request"].vlrt_fraction)
    # Average RT improves by an order of magnitude (paper: 12x).
    assert factors["current_load"] > 5
    assert factors["total_request_modified"] > 5
    # Combining remedies is not meaningfully better than the best single.
    assert factors["current_load_modified"] < 3 * factors["current_load"]
