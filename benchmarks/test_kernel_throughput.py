"""Kernel throughput microbenchmark: events per second by workload.

Four workloads isolate the kernel's hot paths from model code: a single
timeout chain (factory + dispatch), a hundred interleaved processes
(scheduler churn), a Store ping-pong (put/get settling), and a
contended Resource (request/grant/release).  Each records
``events_per_sec`` in ``benchmark.extra_info`` plus its speedup over
the pre-optimisation baseline committed in ``BENCH_kernel.json``.

Noise handling — this runs as the CI ``bench-smoke`` job, so it must
not flake on shared runners whose absolute speed is unknown and whose
load drifts mid-run:

* Workloads are measured in *alternating* round-robin order
  (A B C D, A B C D, ...) with the best of ``ROUNDS`` kept per
  workload, so slow drift hits every workload equally instead of
  biasing whichever happened to run last.
* The hard assertion is on the **geomean** ratio across all four
  workloads, not per workload: single-workload jitter of +/-30%
  (observed on the baseline host) averages out, while a real kernel
  regression moves all four together.
* The floors are set far below the measured round-2 speedup (2.0x
  geomean vs the recorded seed baseline; see BENCH_kernel.json) —
  they catch "the fast path fell off a cliff", not "this runner is
  slower than the baseline machine".
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import pytest

from repro.sim.core import Environment
from repro.sim.queues import Store
from repro.sim.resources import Resource

N_EVENTS = 150_000
ROUNDS = 3
BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_kernel.json"
#: Geomean regression floor vs the recorded seed baseline.  The
#: optimised kernel measures ~2.0x on the baseline host; a runner
#: would have to be 2.5x slower than that host to trip this floor.
MIN_GEOMEAN_RATIO = 0.8
#: Per-workload floor — looser still, pure sanity against one workload
#: collapsing while the others hide it in the geomean.
MIN_WORKLOAD_RATIO = 0.5


def timeout_chain(env, n):
    def proc(env):
        for _ in range(n):
            yield env.timeout(0.001)
    env.process(proc(env))


def interleaved_processes(env, n, m=100):
    per = n // m

    def proc(env, i):
        for _ in range(per):
            yield env.timeout(0.0005 + i * 1e-6)
    for i in range(m):
        env.process(proc(env, i))


def store_pingpong(env, n):
    a, b = Store(env), Store(env)

    def producer(env):
        for i in range(n // 2):
            yield a.put(i)
            yield b.get()

    def consumer(env):
        for _ in range(n // 2):
            yield a.get()
            yield b.put(None)

    env.process(producer(env))
    env.process(consumer(env))


def resource_contention(env, n, m=50):
    pool = Resource(env, capacity=4)
    per = n // m

    def worker(env):
        for _ in range(per):
            with pool.request() as req:
                yield req
                yield env.timeout(0.0003)
    for _ in range(m):
        env.process(worker(env))


WORKLOADS = [timeout_chain, interleaved_processes, store_pingpong,
             resource_contention]


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _measure_alternating(rounds: int = ROUNDS) -> dict[str, float]:
    """Best events/sec per workload, measured in round-robin order."""
    best: dict[str, float] = {}
    for _ in range(rounds):
        for workload in WORKLOADS:
            env = Environment()
            workload(env, N_EVENTS)
            start = time.perf_counter()
            env.run()
            elapsed = time.perf_counter() - start
            eps = env._eid / elapsed
            if eps > best.get(workload.__name__, 0.0):
                best[workload.__name__] = eps
    return best


def _events_per_sec(builder) -> tuple[float, int]:
    """Best-of-rounds for a single workload (used by other benchmarks)."""
    best = 0.0
    events = 0
    for _ in range(ROUNDS):
        env = Environment()
        builder(env, N_EVENTS)
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        events = env._eid
        best = max(best, events / elapsed)
    return best, events


#: Kept for importers (test_tracing_overhead.py) that reuse the floor.
MIN_RATIO = MIN_WORKLOAD_RATIO


def test_kernel_throughput(benchmark):
    box: dict[str, float] = {}

    def work():
        box.update(_measure_alternating())

    benchmark.pedantic(work, rounds=1, iterations=1)
    baseline = _baseline()["events_per_sec"]
    ratios = {}
    for name, eps in box.items():
        ratio = eps / baseline[name]
        ratios[name] = ratio
        benchmark.extra_info[name + "_events_per_sec"] = round(eps)
        benchmark.extra_info[name + "_speedup_vs_seed"] = round(ratio, 3)
        print("{:24s} {:12,.0f} events/s  ({:.2f}x seed baseline)".format(
            name, eps, ratio))
    geomean = math.exp(
        sum(math.log(r) for r in ratios.values()) / len(ratios))
    benchmark.extra_info["geomean_speedup_vs_seed"] = round(geomean, 3)
    print("{:24s} {:>12s}           ({:.2f}x seed baseline)".format(
        "geomean", "", geomean))
    assert geomean >= MIN_GEOMEAN_RATIO, (
        "kernel geomean throughput regressed to {:.2f}x the seed "
        "baseline (floor {:.2f}x): {}".format(
            geomean, MIN_GEOMEAN_RATIO,
            {k: round(v, 2) for k, v in ratios.items()}))
    low = min(ratios, key=ratios.get)
    assert ratios[low] >= MIN_WORKLOAD_RATIO, (
        "workload {} collapsed to {:.2f}x the seed baseline "
        "(floor {:.2f}x)".format(low, ratios[low], MIN_WORKLOAD_RATIO))
