"""Kernel throughput microbenchmark: events per second by workload.

Four workloads isolate the kernel's hot paths from model code: a single
timeout chain (factory + dispatch), a hundred interleaved processes
(heap churn), a Store ping-pong (put/get settling), and a contended
Resource (request/grant/release).  Each records ``events_per_sec`` in
``benchmark.extra_info`` plus its speedup over the pre-optimisation
baseline committed in ``BENCH_kernel.json``.

The baseline numbers were measured on the same machine with alternating
seed/current subprocess pairs (see the JSON's comment for the
regeneration recipe).  Absolute events/sec varies across machines; the
ratio is the meaningful number.  The regression floor asserted here is
deliberately below the measured speedup (1.27-1.45x per workload,
geomean ~1.4x) to leave room for scheduler noise.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.sim.core import Environment
from repro.sim.queues import Store
from repro.sim.resources import Resource

N_EVENTS = 150_000
BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_kernel.json"
#: Regression floor on events/sec vs the committed baseline.  The
#: optimised kernel measures >=1.27x per workload; below 1.0x would
#: mean the fast path regressed to (or past) the seed kernel.
MIN_RATIO = 1.0


def timeout_chain(env, n):
    def proc(env):
        for _ in range(n):
            yield env.timeout(0.001)
    env.process(proc(env))


def interleaved_processes(env, n, m=100):
    per = n // m

    def proc(env, i):
        for _ in range(per):
            yield env.timeout(0.0005 + i * 1e-6)
    for i in range(m):
        env.process(proc(env, i))


def store_pingpong(env, n):
    a, b = Store(env), Store(env)

    def producer(env):
        for i in range(n // 2):
            yield a.put(i)
            yield b.get()

    def consumer(env):
        for _ in range(n // 2):
            yield a.get()
            yield b.put(None)

    env.process(producer(env))
    env.process(consumer(env))


def resource_contention(env, n, m=50):
    pool = Resource(env, capacity=4)
    per = n // m

    def worker(env):
        for _ in range(per):
            with pool.request() as req:
                yield req
                yield env.timeout(0.0003)
    for _ in range(m):
        env.process(worker(env))


WORKLOADS = [timeout_chain, interleaved_processes, store_pingpong,
             resource_contention]


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _events_per_sec(builder) -> tuple[float, int]:
    best = 0.0
    events = 0
    for _ in range(3):
        env = Environment()
        builder(env, N_EVENTS)
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        events = env._eid
        best = max(best, events / elapsed)
    return best, events


@pytest.mark.parametrize("builder", WORKLOADS,
                         ids=[w.__name__ for w in WORKLOADS])
def test_kernel_throughput(benchmark, builder):
    box = {}

    def work():
        box["eps"], box["events"] = _events_per_sec(builder)

    benchmark.pedantic(work, rounds=1, iterations=1)
    eps, events = box["eps"], box["events"]
    baseline = _baseline()["events_per_sec"][builder.__name__]
    ratio = eps / baseline
    benchmark.extra_info.update({
        "events_per_sec": round(eps),
        "events": events,
        "baseline_events_per_sec": baseline,
        "speedup_vs_baseline": round(ratio, 3),
    })
    print("{:24s} {:12,.0f} events/s  ({:.2f}x baseline)".format(
        builder.__name__, eps, ratio))
    assert eps > 0
    assert ratio >= MIN_RATIO, (
        "kernel regressed below the pre-optimisation baseline: "
        "{:.0f} events/s vs {:.0f} ({:.2f}x)".format(eps, baseline, ratio))
