"""Large-N validation: JSQ(d) against the mean-field prediction.

The power-of-d-choices (supermarket) model has an exact mean-field
limit (Mitzenmacher 1996): as the number of replicas N goes to
infinity with per-server load ``lam`` and unit mean service time, the
steady-state fraction of servers holding at least ``i`` jobs is

    s_i = lam ** ((d**i - 1) / (d - 1))

and the expected sojourn time is the doubly-exponentially-converging
series

    E[T] = sum_{i >= 1} lam ** ((d**i - d) / (d - 1)).

For ``d = 2, lam = 0.8`` that is ~1.9474 mean service times — versus
``1 / (1 - lam) = 5.0`` for random dispatch — and the error of a
finite-N system decays like O(1/N).  This file drives
:class:`~repro.workload.aggregate.AggregatedClientPopulation` (the
aggregated large-N fast path) at N large enough for the finite-N gap
to sit inside a tight tolerance, which validates both the JSQ(d)
sampling rule and the aggregated population model against theory in
one shot.

The second test is the scale guard: 500 replicas x 100k users must run
with flat memory — O(users + replicas) state, no per-request objects —
and satisfy the closed-form closed-loop throughput ``N / (Z + E[T])``.

Run directly (no ``--benchmark-only``): these are assertions, not
timings.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.core import Environment
from repro.workload import AggregatedClientPopulation

#: Per-server load and choice count for the mean-field comparison.
LAMBDA = 0.8
D = 2
#: Replicas for the mean-field test.  At N = 300 the finite-N gap
#: measures ~1% (it was ~8% at N = 10); the tolerance leaves room for
#: both that bias and CLT noise over ~100k completions.
REPLICAS = 300
REL_TOL = 0.05

STATUS = pathlib.Path("/proc/self/status")


def meanfield_sojourn(lam: float, d: int, terms: int = 40) -> float:
    """E[T] in units of the mean service time (series converges
    doubly exponentially; 40 terms is far past float precision)."""
    total = 0.0
    for i in range(1, terms + 1):
        exponent = (d ** i - d) / (d - 1)
        term = lam ** exponent
        total += term
        if term < 1e-18:
            break
    return total


def _rss_kb() -> int:
    """Current resident set size in kB (Linux); -1 where unsupported."""
    try:
        for line in STATUS.read_text().splitlines():
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    except OSError:
        pass
    return -1


def test_jsqd_open_loop_matches_meanfield_sojourn():
    """Open JSQ(2) at per-server load 0.8: measured steady-state mean
    sojourn within REL_TOL of the mean-field series."""
    env = Environment()
    pop = AggregatedClientPopulation(
        env, replicas=REPLICAS, service_time=1.0,
        arrival_rate=LAMBDA * REPLICAS, d=D, tick=0.05, seed=42)

    # Warm past the empty-start transient, then measure the increment.
    env.run(until=100.0)
    warm_completions = pop.completions
    warm_sojourn_sum = pop.sojourn_sum
    env.run(until=500.0)
    completions = pop.completions - warm_completions
    measured = (pop.sojourn_sum - warm_sojourn_sum) / completions

    predicted = meanfield_sojourn(LAMBDA, D)
    rel_err = abs(measured - predicted) / predicted
    print("JSQ({}) N={} lam={}: measured E[T]={:.4f}, mean-field "
          "{:.4f} ({:+.2%}), {} completions".format(
              D, REPLICAS, LAMBDA, measured, predicted,
              (measured - predicted) / predicted, completions))
    assert completions > 50_000  # enough samples for the tolerance
    assert rel_err < REL_TOL, (
        "JSQ({}) mean sojourn {:.4f} deviates {:.1%} from the "
        "mean-field prediction {:.4f} (tolerance {:.0%})".format(
            D, measured, rel_err, predicted, REL_TOL))
    # Mean waiting is the same check shifted by one service time.
    assert pop.mean_waiting > 0.0
    # Cumulative Little's-law cross-check (includes warmup, so looser).
    assert pop.littles_law_sojourn() == pytest.approx(
        pop.mean_sojourn, rel=0.05)


def test_jsqd_beats_random_dispatch():
    """The whole point of d >= 2: at the same load, JSQ(2) sojourn must
    land far below random dispatch's M/M/1 value of 1/(1-lam)."""

    def run(d):
        env = Environment()
        pop = AggregatedClientPopulation(
            env, replicas=100, service_time=1.0,
            arrival_rate=LAMBDA * 100, d=d, tick=0.05, seed=7)
        env.run(until=300.0)
        return pop.mean_sojourn

    jsq2, random_dispatch = run(2), run(1)
    print("N=100 lam={}: d=2 E[T]={:.3f}, d=1 E[T]={:.3f}".format(
        LAMBDA, jsq2, random_dispatch))
    # Theory: 1.947 vs 5.0 — demand at least half that separation.
    assert jsq2 < 0.6 * random_dispatch
    # Random dispatch should itself be near M/M/1 (finite-run noise).
    assert random_dispatch == pytest.approx(1.0 / (1.0 - LAMBDA),
                                            rel=0.25)


def test_500_replicas_100k_users_flat_memory():
    """The large-N acceptance point: 500 replicas, 100k closed-loop
    users, flat RSS after warmup, throughput matching N / (Z + E[T])."""
    replicas, users = 500, 100_000
    service_time, think_time = 0.004, 1.0
    env = Environment()
    pop = AggregatedClientPopulation(
        env, replicas=replicas, users=users, service_time=service_time,
        think_time=think_time, d=2, seed=3)

    env.run(until=2.0)  # warmup: population reaches steady state
    rss_before = _rss_kb()
    warm_completions = pop.completions
    warm_time = env.now
    env.run(until=10.0)
    rss_after = _rss_kb()
    completions = pop.completions - warm_completions
    throughput = completions / (env.now - warm_time)

    # Closed-loop law: X = N / (Z + E[T]); per-server load is ~0.8, so
    # E[T] is near the mean-field value of ~1.95 service times.
    sojourn = pop.mean_sojourn
    predicted = users / (think_time + sojourn)
    print("500x100k: {:,} completions, {:,.0f}/s (closed-form "
          "{:,.0f}/s), E[T]={:.4f}s, RSS {}kB -> {}kB".format(
              completions, throughput, predicted, sojourn,
              rss_before, rss_after))
    assert completions > 500_000
    assert throughput == pytest.approx(predicted, rel=0.02)
    assert service_time < sojourn < 10 * service_time
    if rss_before > 0:  # /proc available (Linux CI and dev hosts)
        growth_kb = rss_after - rss_before
        assert growth_kb < 8_192, (
            "RSS grew {} kB across 8 simulated seconds at steady "
            "state; the aggregated model must hold O(users+replicas) "
            "memory".format(growth_kb))
