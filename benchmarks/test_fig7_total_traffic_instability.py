"""Fig. 7(a-c) — total_traffic instability during a millibottleneck.

Paper: the total_traffic policy exhibits exactly the same instability
as total_request — all requests get routed to the Tomcat with the
millibottleneck until it resolves.

Shape to reproduce: same funnel pattern as Fig. 6 under the byte-based
policy.
"""

from test_fig6_total_request_instability import check_instability


def test_fig7_total_traffic_instability(benchmark):
    result = check_instability(benchmark, "original_total_traffic",
                               "fig7 total_traffic")
    # total_traffic was the worse of the two stock policies in Table I.
    assert result.stats().vlrt_fraction > 0.005
