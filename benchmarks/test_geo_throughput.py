"""Geo-topology throughput: spec-driven build and end-to-end run.

Two measurements pin the cost of the geo machinery added for the
zone-hierarchy experiments:

* **build** — :func:`~repro.cluster.topology.build_from_spec` on the
  two-zone ``geo`` builtin: zone placement, WAN link construction,
  per-zone balancers under zone routers, the cache tier and the
  consistent-hash shard ring.  A quadratic ring rebuild or per-link
  allocation storm shows up here first.
* **run** — a 6-simulated-second geo experiment in kernel events per
  second; the WAN transit generators and cache/shard dispatch sit on
  the per-request hot path, so a slow hop implementation drags this
  number down system-wide.

Same noise discipline as ``test_kernel_throughput.py``: best-of-rounds,
ratios against the recorded baseline in ``BENCH_geo.json``, and floors
far below the recorded numbers so shared CI runners don't flake.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.cluster.spec import TopologySpec, get_topology
from repro.cluster.topology import build_from_spec
from repro.sim.core import Environment

ROUNDS = 3
BUILDS_PER_ROUND = 30
RUN_DURATION = 6.0
BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_geo.json"
#: Floor vs the recorded baseline — catches structural regressions,
#: not slower runners.
MIN_RATIO = 0.5


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _measure_builds() -> float:
    best = 0.0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for i in range(BUILDS_PER_ROUND):
            build_from_spec(Environment(), get_topology("geo"),
                            rng=np.random.default_rng(i))
        best = max(best,
                   BUILDS_PER_ROUND / (time.perf_counter() - start))
    return best


def _measure_run_events() -> float:
    spec = TopologySpec.geo(disk_bandwidth=3e6, clients=80)
    best = 0.0
    for _ in range(ROUNDS):
        config = ExperimentConfig(
            profile=spec.scale_profile(), topology=spec,
            duration=RUN_DURATION, seed=42,
            trace_lb_values=False, trace_dispatches=False)
        env = Environment()
        start = time.perf_counter()
        ExperimentRunner(config).run(env=env)
        best = max(best, env._eid / (time.perf_counter() - start))
    return best


def test_geo_throughput(benchmark):
    box: dict[str, float] = {}

    def work():
        box["builds_per_sec"] = _measure_builds()
        box["events_per_sec"] = _measure_run_events()

    benchmark.pedantic(work, rounds=1, iterations=1)
    baseline = _baseline()
    build_ratio = (box["builds_per_sec"]
                   / baseline["build"]["builds_per_sec"])
    run_ratio = (box["events_per_sec"]
                 / baseline["run"]["events_per_sec"])
    benchmark.extra_info["builds_per_sec"] = round(box["builds_per_sec"])
    benchmark.extra_info["run_events_per_sec"] = round(
        box["events_per_sec"])
    benchmark.extra_info["build_ratio_vs_baseline"] = round(build_ratio, 3)
    benchmark.extra_info["run_ratio_vs_baseline"] = round(run_ratio, 3)
    print("geo build  {:10,.0f} builds/s  ({:.2f}x baseline)".format(
        box["builds_per_sec"], build_ratio))
    print("geo run    {:10,.0f} events/s  ({:.2f}x baseline)".format(
        box["events_per_sec"], run_ratio))
    assert build_ratio >= MIN_RATIO, (
        "geo build throughput regressed to {:.2f}x the recorded "
        "baseline (floor {:.2f}x)".format(build_ratio, MIN_RATIO))
    assert run_ratio >= MIN_RATIO, (
        "geo run throughput regressed to {:.2f}x the recorded "
        "baseline (floor {:.2f}x)".format(run_ratio, MIN_RATIO))
